//! Deterministic health rules over recorded timelines.
//!
//! [`analyze`] walks a [`TimelineSnapshot`] and flags anomalies as
//! [`Finding`]s — `(window, rule, severity, evidence)` tuples. Every rule is
//! a pure function of the snapshot and a [`HealthConfig`], so findings are
//! byte-identical across runs and identical whether computed on a live
//! timeline or on a parsed `timeline-v1` file.
//!
//! Rules shipped:
//! - **congestion-onset** — aggregate link wait time (`net.link_wait_ps`)
//!   stays above a fraction of the window width for N consecutive recorded
//!   windows; reported once at the first window of each such run.
//! - **retry-storm** — `pami.retries` in a single window reaches the
//!   threshold; reported at the first window of each burst.
//! - **queue-runaway** — the per-window max of the `pami.queue_depth` gauge
//!   grows strictly monotonically for N consecutive windows, ending at or
//!   above a floor depth.
//! - **starvation** — context lock wait (`pami.ctx.lock_wait_ps`) consumes
//!   more than a fraction of a window.
//! - **am-flush-stall** — the oldest active message parked in an
//!   aggregation buffer (`am.oldest_wait_ps`) has waited a multiple of the
//!   configured flush window: the sweep timer or sender progress is
//!   stalled. Disabled unless the config carries the flush window.

use crate::time::SimTime;
use crate::timeline::{SeriesKind, TimelineSnapshot};
use crate::trace::{TraceValue, Tracer};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look.
    Info,
    /// Sustained degradation.
    Warning,
    /// Run-dominating pathology.
    Critical,
}

impl Severity {
    /// Stable lowercase name, used in reports and trace args.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Window index where the anomaly begins.
    pub window: u64,
    /// Rule name (stable identifier, e.g. `congestion-onset`).
    pub rule: &'static str,
    /// How bad.
    pub severity: Severity,
    /// Human-readable, deterministic evidence string.
    pub evidence: String,
}

/// Detector thresholds. The defaults are tuned for the bench workloads in
/// this repo; see DESIGN.md §13 for the reasoning.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// congestion-onset: aggregate link wait must exceed this fraction of
    /// the window width...
    pub congestion_wait_frac: f64,
    /// ...for at least this many consecutive recorded windows.
    pub congestion_windows: usize,
    /// congestion severity escalates to Critical at this multiple of the
    /// wait threshold.
    pub congestion_critical_mult: f64,
    /// retry-storm: retries in one window at or above this count.
    pub retry_storm_per_window: u64,
    /// queue-runaway: strictly increasing per-window max depth for this
    /// many consecutive windows...
    pub queue_runaway_windows: usize,
    /// ...ending at or above this depth.
    pub queue_runaway_min_depth: i64,
    /// starvation: lock wait above this fraction of a window.
    pub starvation_wait_frac: f64,
    /// am-flush-stall: the AM batcher's configured flush window (ps). 0 —
    /// the default — disables the rule (no batcher, nothing to stall).
    pub am_flush_window_ps: u64,
    /// am-flush-stall: fire when the oldest buffered AM has waited this
    /// multiple of the flush window.
    pub am_stall_mult: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            congestion_wait_frac: 0.5,
            congestion_windows: 3,
            congestion_critical_mult: 8.0,
            retry_storm_per_window: 3,
            queue_runaway_windows: 4,
            queue_runaway_min_depth: 8,
            starvation_wait_frac: 0.5,
            am_flush_window_ps: 0,
            am_stall_mult: 4.0,
        }
    }
}

/// Run every detector over a snapshot. Findings come back sorted by
/// `(window, rule)` so output order is deterministic regardless of which
/// rule fired first.
pub fn analyze(snap: &TimelineSnapshot, cfg: &HealthConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    congestion_onset(snap, cfg, &mut out);
    retry_storm(snap, cfg, &mut out);
    queue_runaway(snap, cfg, &mut out);
    starvation(snap, cfg, &mut out);
    am_flush_stall(snap, cfg, &mut out);
    out.sort_by(|a, b| (a.window, a.rule).cmp(&(b.window, b.rule)));
    out
}

fn congestion_onset(snap: &TimelineSnapshot, cfg: &HealthConfig, out: &mut Vec<Finding>) {
    let Some(s) = snap.series("net.link_wait_ps") else {
        return;
    };
    if s.kind != SeriesKind::Counter {
        return;
    }
    let threshold = cfg.congestion_wait_frac * snap.window_ps as f64;
    let mut run_start: Option<(u64, f64)> = None; // (first window, peak wait)
    let mut run_len = 0usize;
    let flush = |start: Option<(u64, f64)>, len: usize, out: &mut Vec<Finding>| {
        if let Some((w0, peak)) = start {
            if len >= cfg.congestion_windows {
                let severity = if peak >= threshold * cfg.congestion_critical_mult {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                out.push(Finding {
                    window: w0,
                    rule: "congestion-onset",
                    severity,
                    evidence: format!(
                        "link wait >= {:.0} ps/window for {len} windows (peak {:.0} ps, {:.2}x window)",
                        threshold,
                        peak,
                        peak / snap.window_ps as f64
                    ),
                });
            }
        }
    };
    let mut prev_idx: Option<u64> = None;
    for w in &s.windows {
        let contiguous = prev_idx.is_none_or(|p| w.idx == p + 1);
        let hot = w.sum as f64 >= threshold;
        if hot && contiguous && run_start.is_some() {
            run_len += 1;
            if let Some(r) = run_start.as_mut() {
                r.1 = r.1.max(w.sum as f64);
            }
        } else {
            flush(run_start.take(), run_len, out);
            run_len = 0;
            if hot {
                run_start = Some((w.idx, w.sum as f64));
                run_len = 1;
            }
        }
        prev_idx = Some(w.idx);
    }
    flush(run_start.take(), run_len, out);
}

fn retry_storm(snap: &TimelineSnapshot, cfg: &HealthConfig, out: &mut Vec<Finding>) {
    let Some(s) = snap.series("pami.retries") else {
        return;
    };
    if s.kind != SeriesKind::Counter {
        return;
    }
    let mut in_storm = false;
    let mut prev_idx: Option<u64> = None;
    for w in &s.windows {
        // A gap in the recorded windows means zero retries there: any
        // ongoing storm ended.
        if prev_idx.is_none_or(|p| w.idx != p + 1) {
            in_storm = false;
        }
        prev_idx = Some(w.idx);
        let stormy = w.sum >= cfg.retry_storm_per_window;
        if stormy && !in_storm {
            out.push(Finding {
                window: w.idx,
                rule: "retry-storm",
                severity: if w.sum >= cfg.retry_storm_per_window * 4 {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                evidence: format!(
                    "{} retries in one window (threshold {})",
                    w.sum, cfg.retry_storm_per_window
                ),
            });
        }
        in_storm = stormy;
    }
}

fn queue_runaway(snap: &TimelineSnapshot, cfg: &HealthConfig, out: &mut Vec<Finding>) {
    let Some(s) = snap.series("pami.queue_depth") else {
        return;
    };
    if s.kind != SeriesKind::Gauge {
        return;
    }
    let w = &s.windows;
    let mut i = 0;
    while i < w.len() {
        // Longest strictly-increasing contiguous run of per-window maxima
        // starting at i.
        let mut j = i;
        while j + 1 < w.len() && w[j + 1].idx == w[j].idx + 1 && w[j + 1].max > w[j].max {
            j += 1;
        }
        let len = j - i + 1;
        if len >= cfg.queue_runaway_windows && w[j].max >= cfg.queue_runaway_min_depth {
            out.push(Finding {
                window: w[i].idx,
                rule: "queue-runaway",
                severity: Severity::Warning,
                evidence: format!(
                    "queue depth max grew {} -> {} over {len} windows",
                    w[i].max, w[j].max
                ),
            });
        }
        i = j + 1;
    }
}

fn starvation(snap: &TimelineSnapshot, cfg: &HealthConfig, out: &mut Vec<Finding>) {
    let Some(s) = snap.series("pami.ctx.lock_wait_ps") else {
        return;
    };
    if s.kind != SeriesKind::Counter {
        return;
    }
    let threshold = cfg.starvation_wait_frac * snap.window_ps as f64;
    let mut starved = false;
    let mut prev_idx: Option<u64> = None;
    for w in &s.windows {
        if prev_idx.is_none_or(|p| w.idx != p + 1) {
            starved = false;
        }
        prev_idx = Some(w.idx);
        let hot = w.sum as f64 >= threshold;
        if hot && !starved {
            out.push(Finding {
                window: w.idx,
                rule: "starvation",
                severity: Severity::Info,
                evidence: format!(
                    "context lock wait {:.0} ps in one window ({:.2}x window width)",
                    w.sum as f64,
                    w.sum as f64 / snap.window_ps as f64
                ),
            });
        }
        starved = hot;
    }
}

fn am_flush_stall(snap: &TimelineSnapshot, cfg: &HealthConfig, out: &mut Vec<Finding>) {
    if cfg.am_flush_window_ps == 0 {
        return;
    }
    let Some(s) = snap.series("am.oldest_wait_ps") else {
        return;
    };
    if s.kind != SeriesKind::Gauge {
        return;
    }
    let threshold = cfg.am_stall_mult * cfg.am_flush_window_ps as f64;
    let mut stalled = false;
    let mut prev_idx: Option<u64> = None;
    for w in &s.windows {
        if prev_idx.is_none_or(|p| w.idx != p + 1) {
            stalled = false;
        }
        prev_idx = Some(w.idx);
        let hot = w.max as f64 >= threshold;
        if hot && !stalled {
            out.push(Finding {
                window: w.idx,
                rule: "am-flush-stall",
                severity: if w.max as f64 >= threshold * 4.0 {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                evidence: format!(
                    "oldest buffered AM waited {} ps ({:.1}x the {} ps flush window)",
                    w.max,
                    w.max as f64 / cfg.am_flush_window_ps as f64,
                    cfg.am_flush_window_ps
                ),
            });
        }
        stalled = hot;
    }
}

/// Mirror findings into a tracer as instants on a `health` track, so they
/// land time-aligned next to spans and counter tracks in the Chrome trace.
/// No-op when the tracer is disabled.
pub fn emit_instants(tracer: &Tracer, findings: &[Finding], window_ps: u64) {
    if !tracer.on() || findings.is_empty() {
        return;
    }
    let track = tracer.track("health");
    for f in findings {
        tracer.instant(
            track,
            f.rule,
            SimTime(f.window * window_ps),
            &[
                ("severity", TraceValue::Str(f.severity.as_str())),
                ("window", TraceValue::U64(f.window)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{SeriesKind, Timeline};

    fn t(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }

    fn base() -> (Timeline, HealthConfig) {
        let tl = Timeline::new();
        tl.enable(1_000_000, 4096); // 1 µs windows
        (tl, HealthConfig::default())
    }

    #[test]
    fn congestion_onset_fires_on_sustained_wait() {
        let (tl, cfg) = base();
        let id = tl.series("net.link_wait_ps", SeriesKind::Counter);
        // Windows 2..=5 each carry 0.6 µs of wait (threshold 0.5 µs).
        for w in 2..=5u64 {
            tl.add(id, t(w), 600_000);
        }
        tl.add(id, t(9), 600_000); // isolated hot window: no finding
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].window, f[0].rule), (2, "congestion-onset"));
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn congestion_escalates_to_critical() {
        let (tl, cfg) = base();
        let id = tl.series("net.link_wait_ps", SeriesKind::Counter);
        for w in 0..3u64 {
            tl.add(id, t(w), 5_000_000); // 10x threshold
        }
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Critical);
    }

    #[test]
    fn retry_storm_reports_burst_onsets() {
        let (tl, cfg) = base();
        let id = tl.series("pami.retries", SeriesKind::Counter);
        tl.add(id, t(1), 1); // below threshold
        tl.add(id, t(3), 5); // storm 1
        tl.add(id, t(4), 4);
        tl.add(id, t(7), 13); // storm 2, critical
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].window, f[0].severity), (3, Severity::Warning));
        assert_eq!((f[1].window, f[1].severity), (7, Severity::Critical));
    }

    #[test]
    fn queue_runaway_needs_monotone_growth() {
        let (tl, cfg) = base();
        let id = tl.series("pami.queue_depth", SeriesKind::Gauge);
        for (w, d) in [(0, 1), (1, 3), (2, 5), (3, 9)] {
            tl.gauge(id, t(w), d);
        }
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].window, f[0].rule), (0, "queue-runaway"));

        // Flat depth: no finding.
        let (tl2, _) = base();
        let id2 = tl2.series("pami.queue_depth", SeriesKind::Gauge);
        for w in 0..8u64 {
            tl2.gauge(id2, t(w), 9);
        }
        assert!(analyze(&tl2.snapshot(), &cfg).is_empty());
    }

    #[test]
    fn starvation_flags_dominated_windows() {
        let (tl, cfg) = base();
        let id = tl.series("pami.ctx.lock_wait_ps", SeriesKind::Counter);
        tl.add(id, t(4), 800_000);
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].window, f[0].rule), (4, "starvation"));
    }

    #[test]
    fn am_flush_stall_trips_on_overdue_buffer() {
        let (tl, mut cfg) = base();
        cfg.am_flush_window_ps = 1_000_000; // 1 µs flush window
        let id = tl.series("am.oldest_wait_ps", SeriesKind::Gauge);
        tl.gauge(id, t(2), 500_000); // 0.5x window: healthy
        tl.gauge(id, t(5), 5_000_000); // 5x window: stalled
        tl.gauge(id, t(6), 6_000_000); // same burst: no second finding
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].window, f[0].rule), (5, "am-flush-stall"));
        assert_eq!(f[0].severity, Severity::Warning);

        // Critical at 4x the stall threshold (16x the window here).
        let (tl2, mut cfg2) = base();
        cfg2.am_flush_window_ps = 1_000_000;
        let id2 = tl2.series("am.oldest_wait_ps", SeriesKind::Gauge);
        tl2.gauge(id2, t(1), 20_000_000);
        let f2 = analyze(&tl2.snapshot(), &cfg2);
        assert_eq!(f2[0].severity, Severity::Critical);

        // Rule is off without a configured window.
        let (tl3, cfg3) = base();
        let id3 = tl3.series("am.oldest_wait_ps", SeriesKind::Gauge);
        tl3.gauge(id3, t(1), 20_000_000);
        assert!(analyze(&tl3.snapshot(), &cfg3).is_empty());
    }

    #[test]
    fn findings_sort_by_window_then_rule() {
        let (tl, cfg) = base();
        let r = tl.series("pami.retries", SeriesKind::Counter);
        let w = tl.series("net.link_wait_ps", SeriesKind::Counter);
        tl.add(r, t(2), 9);
        for i in 2..=4u64 {
            tl.add(w, t(i), 900_000);
        }
        let f = analyze(&tl.snapshot(), &cfg);
        assert_eq!(
            f.iter().map(|x| (x.window, x.rule)).collect::<Vec<_>>(),
            vec![(2, "congestion-onset"), (2, "retry-storm")]
        );
    }

    #[test]
    fn analysis_is_identical_on_parsed_snapshots() {
        let (tl, cfg) = base();
        let id = tl.series("net.link_wait_ps", SeriesKind::Counter);
        for w in 0..4u64 {
            tl.add(id, t(w), 700_000);
        }
        let snap = tl.snapshot();
        let doc = crate::timeline::TimelineDoc {
            bench: "unit".into(),
            runs: vec![("r".into(), snap.clone())],
        };
        let back = crate::timeline::TimelineDoc::parse(&doc.to_json()).unwrap();
        assert_eq!(analyze(&snap, &cfg), analyze(&back.runs[0].1, &cfg));
    }
}
