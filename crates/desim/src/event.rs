//! One-shot completion events.
//!
//! [`Completion`] is the simulator's basic completion-notification object: a
//! write-once cell that any number of tasks can await. It underpins
//! non-blocking communication handles (local/remote callbacks in the PAMI
//! layer complete a `Completion`, and the caller awaits it).

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::waker_set::WakerSet;

struct State<T> {
    value: Option<T>,
    wakers: WakerSet,
}

/// A clonable, write-once event that tasks can await.
///
/// The payload must be `Clone` so multiple waiters can each receive it;
/// completions carrying large data should wrap it in `Rc`.
pub struct Completion<T = ()> {
    state: Rc<RefCell<State<T>>>,
}

impl<T> Clone for Completion<T> {
    fn clone(&self) -> Self {
        Completion {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Default for Completion<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Completion<T> {
    /// Create an incomplete event.
    pub fn new() -> Completion<T> {
        Completion {
            state: Rc::new(RefCell::new(State {
                value: None,
                wakers: WakerSet::new(),
            })),
        }
    }

    /// Complete the event, waking all waiters.
    ///
    /// # Panics
    /// Panics if the event was already completed.
    pub fn complete(&self, value: T) {
        let wakers = {
            let mut st = self.state.borrow_mut();
            assert!(st.value.is_none(), "Completion completed twice");
            st.value = Some(value);
            st.wakers.take_all()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// True once [`Completion::complete`] has been called.
    pub fn is_complete(&self) -> bool {
        self.state.borrow().value.is_some()
    }
}

impl<T: Clone> Completion<T> {
    /// The completed value, if any, without waiting.
    pub fn peek(&self) -> Option<T> {
        self.state.borrow().value.clone()
    }

    /// Future resolving to (a clone of) the completed value.
    pub fn wait(&self) -> CompletionWait<T> {
        CompletionWait {
            state: Rc::clone(&self.state),
            slot: None,
        }
    }
}

/// Future returned by [`Completion::wait`].
pub struct CompletionWait<T> {
    state: Rc<RefCell<State<T>>>,
    slot: Option<u64>,
}

impl<T: Clone> Future for CompletionWait<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        let mut st = this.state.borrow_mut();
        match &st.value {
            Some(v) => {
                let v = v.clone();
                st.wakers.remove(&this.slot);
                Poll::Ready(v)
            }
            None => {
                st.wakers.register(&mut this.slot, cx.waker());
                Poll::Pending
            }
        }
    }
}

impl<T> Drop for CompletionWait<T> {
    fn drop(&mut self) {
        // A raced-and-dropped waiter must not leave a stale waker behind.
        self.state.borrow_mut().wakers.remove(&self.slot);
    }
}

/// Await every completion in a slice (in order; order does not affect the
/// final virtual time since waiting consumes no time by itself).
pub async fn wait_all<T: Clone + 'static>(events: &[Completion<T>]) {
    for e in events {
        e.wait().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};

    #[test]
    fn complete_before_wait() {
        let sim = Sim::new();
        let c: Completion<u32> = Completion::new();
        c.complete(5);
        let c2 = c.clone();
        let h = sim.spawn(async move { c2.wait().await });
        sim.run();
        assert_eq!(h.try_result(), Some(5));
    }

    #[test]
    fn wait_before_complete() {
        let sim = Sim::new();
        let c: Completion<u32> = Completion::new();
        let c2 = c.clone();
        let h = sim.spawn(async move { c2.wait().await });
        let s = sim.clone();
        let c3 = c.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(3)).await;
            c3.complete(9);
        });
        sim.run();
        assert_eq!(h.try_result(), Some(9));
        assert_eq!(sim.now().as_us(), 3.0);
    }

    #[test]
    fn multiple_waiters_all_receive() {
        let sim = Sim::new();
        let c: Completion<u64> = Completion::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c2 = c.clone();
            handles.push(sim.spawn(async move { c2.wait().await }));
        }
        let c3 = c.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_ns(10)).await;
            c3.complete(77);
        });
        sim.run();
        for h in handles {
            assert_eq!(h.try_result(), Some(77));
        }
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let c: Completion<()> = Completion::new();
        c.complete(());
        c.complete(());
    }

    #[test]
    fn peek_and_is_complete() {
        let c: Completion<u8> = Completion::new();
        assert!(!c.is_complete());
        assert_eq!(c.peek(), None);
        c.complete(1);
        assert!(c.is_complete());
        assert_eq!(c.peek(), Some(1));
    }

    #[test]
    fn wait_all_awaits_everything() {
        let sim = Sim::new();
        let events: Vec<Completion<()>> = (0..3).map(|_| Completion::new()).collect();
        for (i, e) in events.iter().enumerate() {
            let e = e.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_us((3 - i) as u64)).await;
                e.complete(());
            });
        }
        let evs = events.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            wait_all(&evs).await;
            s.now()
        });
        sim.run();
        assert_eq!(h.try_result().unwrap().as_us(), 3.0);
    }
}
