//! Conservative time-windowed parallel driver: N worker shards, each owning
//! a private [`Sim`], executing in lockstep lookahead windows.
//!
//! # Model
//!
//! The BG/Q cost model gives every cross-rank message a hard minimum latency
//! (≥ one hop at 35 ns; ≥ 815 ns for an internode header), which is exactly
//! the *lookahead* a conservative parallel discrete-event simulation needs:
//! if every cross-shard interaction is announced at least `lookahead` of
//! virtual time before it takes effect, then all events in the window
//! `[gvt, gvt + lookahead)` — where `gvt` is the global minimum pending
//! event time — are causally independent across shards and can execute
//! concurrently without any risk of a straggler message arriving in a
//! shard's past.
//!
//! [`ParSim::run`] drives one [`ShardApp`] per worker:
//!
//! 1. **flush** — each shard publishes the [`Envelope`]s its last window
//!    produced into per-destination mailboxes (the only cross-thread state);
//! 2. **bound** — each shard publishes `min(next_event_time, earliest
//!    pending envelope)`; the global minimum of these bounds is `gvt`;
//! 3. **deliver** — envelopes due before `horizon = gvt + lookahead` are
//!    drained, sorted by `(at, key)`, and handed to the app, which schedules
//!    their effects into its own `Sim`;
//! 4. **run** — `sim.run_until(horizon - 1)` executes the window.
//!
//! Each worker creates its `Sim` on its own thread, so the kernel's
//! `Rc`-waker single-thread invariant holds *per shard* — the enforced
//! owner-thread check in `kernel.rs` still guards every waker.
//!
//! # Determinism
//!
//! Within a shard, events run in the kernel's exact `(time, seq)` order.
//! Across shards, the only communication is envelopes, and those are
//! delivered in `(at, key)` order at deterministic points (window
//! boundaries). Provided the app keys envelopes with a deterministic,
//! per-receiver-unique value (e.g. `origin_rank << 32 | origin_seq`), every
//! shard observes an identical event sequence regardless of worker count —
//! so all sim-time outputs are byte-identical from `workers = 1` to
//! `workers = N`. The windows only batch synchronization; they never decide
//! ordering.
//!
//! # Safety argument (no straggler can arrive in the past)
//!
//! An envelope sent while executing window `[gvt, horizon)` satisfies
//! `at ≥ horizon` (enforced by [`Outbox::send`]: the floor is set to the
//! window horizon before any app code runs). The receiving shard's clock
//! never passes `horizon - 1` within the window, and the envelope is
//! delivered at the next boundary — strictly before the receiver's clock
//! reaches `at`. Hence no event is ever scheduled in a shard's past, and
//! because some shard always holds an event at exactly `gvt < horizon`,
//! every window makes progress: the loop cannot livelock.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::kernel::Sim;
use crate::time::{SimDuration, SimTime};

/// A cross-shard message: deliver `msg` to `to_shard` at virtual time `at`.
///
/// `key` breaks ties among envelopes delivered to the same shard at the same
/// `at`; it must be deterministic and unique per `(to_shard, at)` — the
/// conventional encoding is `origin_rank << 32 | origin_seq`.
pub struct Envelope<M> {
    /// Virtual time at which the message takes effect on the receiver.
    pub at: SimTime,
    /// Receiving shard index in `0..workers`.
    pub to_shard: usize,
    /// Deterministic tie-break among same-`(to_shard, at)` envelopes.
    pub key: u64,
    /// Application payload.
    pub msg: M,
}

/// Shard-local staging buffer for outgoing envelopes. `!Send` by
/// construction — it belongs to one worker and is flushed into the shared
/// mailboxes only at window boundaries.
pub struct Outbox<M> {
    /// Earliest admissible `at` for a send: the current window's horizon
    /// (zero before the first window, i.e. during [`ShardApp::start`]).
    floor: Cell<u64>,
    buf: RefCell<Vec<Envelope<M>>>,
}

impl<M> Outbox<M> {
    fn new() -> Outbox<M> {
        Outbox {
            floor: Cell::new(0),
            buf: RefCell::new(Vec::new()),
        }
    }

    /// Stage an envelope for delivery at the next window boundary.
    ///
    /// Panics if `env.at` lands inside the current window — that would mean
    /// the app promised less than the configured lookahead, the one
    /// invariant conservative windowing cannot survive.
    pub fn send(&self, env: Envelope<M>) {
        assert!(
            env.at.as_ps() >= self.floor.get(),
            "cross-shard envelope at t={} violates the lookahead window \
             (horizon t={}): sends must target at least `lookahead` past the \
             window start",
            env.at.as_ps(),
            self.floor.get(),
        );
        self.buf.borrow_mut().push(env);
    }

    /// Number of staged envelopes (drained at the next boundary).
    pub fn staged(&self) -> usize {
        self.buf.borrow().len()
    }
}

/// One shard of a parallel simulation. Implementations are moved onto worker
/// threads (`Send`), where they receive a thread-local [`Sim`] to populate.
pub trait ShardApp: Send {
    /// Cross-shard message payload.
    type Msg: Send + 'static;
    /// Per-shard result returned by [`ShardApp::finish`].
    type Out: Send;

    /// Populate the freshly created shard `Sim` (spawn tasks, schedule the
    /// initial events). Runs before the first window; `out.send` may target
    /// any future time here.
    fn start(&mut self, shard: usize, sim: &Sim, out: &Outbox<Self::Msg>);

    /// Handle one due envelope. Called at a window boundary with the shard
    /// clock still below `env.at`; the typical reaction is
    /// `sim.schedule(env.at, …)`. Envelopes arrive in `(at, key)` order.
    fn deliver(&mut self, sim: &Sim, env: Envelope<Self::Msg>, out: &Outbox<Self::Msg>);

    /// Produce the shard's result after the last window drained.
    fn finish(&mut self, sim: &Sim) -> Self::Out;
}

/// Yielding sense-reversal barrier that propagates peer panics instead of
/// deadlocking: a worker that unwinds flips `poisoned`, and every peer
/// parked in `wait` panics in turn, letting `thread::scope` join everyone.
/// (`std::sync::Barrier` would leave the survivors parked forever.)
struct PanicBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl PanicBarrier {
    fn new(n: usize) -> PanicBarrier {
        PanicBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn check(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("parallel shard aborted: a peer shard panicked");
        }
    }

    fn wait(&self) {
        self.check();
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            // yield_now, not spin: the CI container has one core, and a hot
            // spin here would starve the very workers we are waiting for.
            while self.generation.load(Ordering::Acquire) == gen {
                self.check();
                std::thread::yield_now();
            }
        }
    }
}

/// Poisons the barrier if the owning worker unwinds.
struct PoisonOnPanic<'a>(&'a PanicBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poisoned.store(true, Ordering::Release);
        }
    }
}

/// Cross-thread state: per-shard mailboxes plus the published time bounds
/// the GVT reduction runs over.
struct Shared<M> {
    inboxes: Vec<Mutex<Vec<Envelope<M>>>>,
    bound: Vec<AtomicU64>,
    barrier: PanicBarrier,
}

/// The conservative parallel driver: `workers` shards in lockstep windows of
/// width `lookahead`.
pub struct ParSim {
    workers: usize,
    lookahead: SimDuration,
}

impl ParSim {
    /// `lookahead` must be positive — it is both the window width and the
    /// minimum cross-shard notice; the BG/Q model's floor is one 35 ns hop.
    pub fn new(workers: usize, lookahead: SimDuration) -> ParSim {
        assert!(lookahead.as_ps() > 0, "ParSim lookahead must be positive");
        ParSim {
            workers: workers.max(1),
            lookahead,
        }
    }

    /// Number of shards this driver runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run one app per shard to completion; returns the per-shard results in
    /// shard order. `apps.len()` must equal `workers`.
    pub fn run<A: ShardApp>(&self, apps: Vec<A>) -> Vec<A::Out> {
        assert_eq!(
            apps.len(),
            self.workers,
            "ParSim::run needs exactly one ShardApp per worker"
        );
        let shared: Shared<A::Msg> = Shared {
            inboxes: (0..self.workers).map(|_| Mutex::new(Vec::new())).collect(),
            bound: (0..self.workers)
                .map(|_| AtomicU64::new(u64::MAX))
                .collect(),
            barrier: PanicBarrier::new(self.workers),
        };
        let lookahead = self.lookahead.as_ps();
        if self.workers == 1 {
            // Serial degeneration: same windowed loop, no threads. Keeping
            // one code path is what makes `--workers 1` vs `--workers N`
            // comparisons meaningful.
            let mut apps = apps;
            return vec![drive(0, apps.pop().unwrap(), &shared, lookahead)];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = apps
                .into_iter()
                .enumerate()
                .map(|(shard, app)| {
                    let shared = &shared;
                    scope.spawn(move || drive(shard, app, shared, lookahead))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }
}

/// Worker body: the window loop described in the module docs.
fn drive<A: ShardApp>(shard: usize, mut app: A, shared: &Shared<A::Msg>, lookahead: u64) -> A::Out {
    let _poison = PoisonOnPanic(&shared.barrier);
    let sim = Sim::new();
    let outbox = Outbox::new();
    app.start(shard, &sim, &outbox);
    let mut due: Vec<Envelope<A::Msg>> = Vec::new();
    loop {
        // 1. flush: publish staged envelopes into destination mailboxes.
        for env in outbox.buf.borrow_mut().drain(..) {
            debug_assert!(
                env.to_shard < shared.inboxes.len(),
                "envelope to unknown shard"
            );
            shared.inboxes[env.to_shard].lock().unwrap().push(env);
        }
        shared.barrier.wait(); // every shard's sends are now visible
                               // 2. bound: earliest local work, own events or pending envelopes.
        let mut bound = sim.next_event_time().map_or(u64::MAX, |t| t.as_ps());
        for env in shared.inboxes[shard].lock().unwrap().iter() {
            bound = bound.min(env.at.as_ps());
        }
        shared.bound[shard].store(bound, Ordering::Release);
        shared.barrier.wait(); // every shard's bound is now visible
        let mut gvt = u64::MAX;
        for b in &shared.bound {
            gvt = gvt.min(b.load(Ordering::Acquire));
        }
        if gvt == u64::MAX {
            break; // globally idle — identical conclusion on every shard
        }
        let horizon = gvt.saturating_add(lookahead);
        // 3. deliver envelopes due inside this window, in (at, key) order.
        {
            let mut inbox = shared.inboxes[shard].lock().unwrap();
            let mut i = 0;
            while i < inbox.len() {
                if inbox[i].at.as_ps() < horizon {
                    due.push(inbox.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        due.sort_unstable_by_key(|e| (e.at, e.key));
        debug_assert!(
            due.windows(2)
                .all(|w| (w[0].at, w[0].key) != (w[1].at, w[1].key)),
            "envelope keys must be unique per (shard, at) for deterministic delivery"
        );
        outbox.floor.set(horizon);
        for env in due.drain(..) {
            app.deliver(&sim, env, &outbox);
        }
        // 4. run the window: everything strictly below the horizon.
        sim.run_until(SimTime(horizon - 1));
    }
    app.finish(&sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOKAHEAD_PS: u64 = 815_000; // BG/Q min internode one-way header

    /// Token-passing storm over `n` logical nodes spread across shards with
    /// the block map the rank sharder uses. Every hop is announced one full
    /// lookahead ahead and keyed `origin_node << 32 | origin_seq`, so the
    /// merged, sorted delivery log must not depend on the worker count.
    struct Storm {
        workers: usize,
        n: u64,
        /// Per-node send counters — the worker-count-invariant `key` source.
        seq: Vec<u64>,
        log: Vec<(u64, u64, u64)>, // (t_ps, node, token)
    }

    fn owner(node: u64, n: u64, workers: usize) -> usize {
        ((node * workers as u64) / n) as usize
    }

    impl Storm {
        fn new(workers: usize, n: u64) -> Storm {
            Storm {
                workers,
                n,
                seq: vec![0; n as usize],
                log: Vec::new(),
            }
        }

        /// Record a token landing on `node` at `at`, and forward it while it
        /// still has hops left.
        fn hop(
            &mut self,
            out: &Outbox<(u64, u64, u32)>,
            at: SimTime,
            node: u64,
            token: u64,
            ttl: u32,
        ) {
            self.log.push((at.as_ps(), node, token));
            if ttl == 0 {
                return;
            }
            let next = (node + token) % self.n;
            let send_at = at + SimDuration(LOOKAHEAD_PS + (token * 37_000) % 500_000 + 1_000);
            let seq = &mut self.seq[node as usize];
            let key = (node << 32) | *seq;
            *seq += 1;
            out.send(Envelope {
                at: send_at,
                to_shard: owner(next, self.n, self.workers),
                key,
                msg: (next, (token * 31 + 7) % 1009 + 1, ttl - 1),
            });
        }
    }

    impl ShardApp for Storm {
        type Msg = (u64, u64, u32); // (node, token, ttl)
        type Out = Vec<(u64, u64, u64)>;

        fn start(&mut self, shard: usize, _sim: &Sim, out: &Outbox<Self::Msg>) {
            // Seed each owned node's first token through the outbox so even
            // the first delivery flows through the sorted boundary path.
            for node in 0..self.n {
                if owner(node, self.n, self.workers) != shard {
                    continue;
                }
                out.send(Envelope {
                    at: SimTime((node + 1) * 10_000),
                    to_shard: shard,
                    key: node << 32,
                    msg: (node, node + 1, 40),
                });
                self.seq[node as usize] = 1;
            }
        }

        fn deliver(&mut self, sim: &Sim, env: Envelope<Self::Msg>, out: &Outbox<Self::Msg>) {
            // Advance the shard clock to the envelope's instant (an empty
            // timer — the hop itself needs `&mut self`, which a timer
            // closure cannot borrow), then log with the envelope timestamp:
            // exactly the values a timer at `env.at` would record.
            sim.schedule(env.at, || {});
            let (node, token, ttl) = env.msg;
            self.hop(out, env.at, node, token, ttl);
        }

        fn finish(&mut self, _sim: &Sim) -> Self::Out {
            std::mem::take(&mut self.log)
        }
    }

    fn storm_log(workers: usize) -> Vec<(u64, u64, u64)> {
        let par = ParSim::new(workers, SimDuration(LOOKAHEAD_PS));
        let apps: Vec<Storm> = (0..workers).map(|_| Storm::new(workers, 24)).collect();
        let mut merged: Vec<(u64, u64, u64)> = par.run(apps).into_iter().flatten().collect();
        merged.sort_unstable();
        merged
    }

    #[test]
    fn storm_is_worker_count_invariant() {
        let serial = storm_log(1);
        assert_eq!(serial.len(), 24 * 41, "each seed token must hop 40 times");
        for workers in [2usize, 3, 4] {
            assert_eq!(storm_log(workers), serial, "workers={workers} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "violates the lookahead window")]
    fn lookahead_violation_panics() {
        struct Cheater;
        impl ShardApp for Cheater {
            type Msg = ();
            type Out = ();
            fn start(&mut self, _s: usize, _sim: &Sim, out: &Outbox<()>) {
                out.send(Envelope {
                    at: SimTime(2_000),
                    to_shard: 0,
                    key: 0,
                    msg: (),
                });
            }
            fn deliver(&mut self, _sim: &Sim, env: Envelope<()>, out: &Outbox<()>) {
                // Reacting to a window-1 envelope with a send *inside* the
                // same window is exactly the bug the floor must catch.
                out.send(Envelope {
                    at: env.at,
                    to_shard: 0,
                    key: 1,
                    msg: (),
                });
            }
            fn finish(&mut self, _sim: &Sim) {}
        }
        let par = ParSim::new(1, SimDuration(1_000_000));
        par.run(vec![Cheater]);
    }

    #[test]
    #[should_panic]
    fn peer_panic_does_not_deadlock() {
        struct Boom;
        impl ShardApp for Boom {
            type Msg = ();
            type Out = ();
            fn start(&mut self, shard: usize, sim: &Sim, _o: &Outbox<()>) {
                if shard == 1 {
                    panic!("shard {shard} exploded");
                }
                // The healthy shard has real work: without barrier
                // poisoning it would park forever and hang the test.
                for i in 1..100u64 {
                    sim.schedule(SimTime(i * 1_000_000), || {});
                }
            }
            fn deliver(&mut self, _sim: &Sim, _e: Envelope<()>, _o: &Outbox<()>) {}
            fn finish(&mut self, _sim: &Sim) {}
        }
        let par = ParSim::new(2, SimDuration(1_000_000));
        par.run(vec![Boom, Boom]);
    }

    #[test]
    fn next_event_time_tracks_ready_and_timers() {
        let sim = Sim::new();
        assert_eq!(sim.next_event_time(), None);
        sim.schedule(SimTime(5_000), || {});
        assert_eq!(sim.next_event_time(), Some(SimTime(5_000)));
        sim.spawn(async {});
        assert_eq!(sim.next_event_time(), Some(SimTime::ZERO));
        sim.run();
        assert_eq!(sim.next_event_time(), None);
    }

    #[test]
    fn schedule_reserved_restores_tie_break_position() {
        // Reserve a ticket, let a rival grab a later seq at the same time,
        // then schedule via the ticket: the reserved callback must still win
        // the tie exactly as an immediate schedule() would have.
        let log = std::rc::Rc::new(RefCell::new(Vec::new()));
        let sim = Sim::new();
        let ticket = sim.reserve_seq();
        {
            let log = log.clone();
            sim.schedule(SimTime(7_000), move || log.borrow_mut().push("rival"));
        }
        {
            let log = log.clone();
            sim.schedule_reserved(SimTime(7_000), ticket, move || {
                log.borrow_mut().push("reserved")
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["reserved", "rival"]);
    }
}
