#![warn(missing_docs)]
//! # desim — deterministic discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulator with a virtual-time async
//! executor. Simulated entities (PGAS ranks, NIC engines, asynchronous
//! progress threads, …) are expressed as ordinary `async` functions; awaiting
//! [`Sim::sleep`] advances *virtual* time, and synchronization primitives
//! ([`sync::SimMutex`], [`sync::Barrier`], [`channel`]s, [`event::Completion`])
//! let tasks interact causally without consuming virtual time on their own.
//!
//! The executor is single-threaded and fully deterministic: events that fire
//! at the same virtual time are ordered by their insertion sequence number, so
//! a given program always produces the same schedule, timings and statistics.
//!
//! Time is kept in integer **picoseconds** ([`SimTime`]); at that resolution a
//! `u64` covers ~213 simulated days, while byte-granularity bandwidth terms
//! (e.g. 0.5556 ns/byte for a 1.8 GB/s link) remain exact enough that
//! accumulated rounding error is negligible.
//!
//! ```
//! use desim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let s = sim.clone();
//! sim.spawn(async move {
//!     s.sleep(SimDuration::from_us(5)).await;
//!     assert_eq!(s.now().as_us(), 5.0);
//! });
//! let end = sim.run();
//! assert_eq!(end.as_us(), 5.0);
//! ```

pub mod channel;
pub mod critpath;
pub mod event;
pub mod fault;
pub mod flight;
pub mod futures;
pub mod fxhash;
pub mod health;
pub mod json;
pub mod kernel;
pub mod memprof;
pub mod par;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod timeline;
pub mod trace;
pub mod waker_set;
mod wheel;

pub use critpath::{analyze, Breakdown, CritPath, LinkStat};
pub use event::Completion;
pub use fault::{FaultEvent, FaultPlan, FaultSpec};
pub use flight::{FlightRecorder, OpId, SegCategory};
pub use futures::{race, Either};
pub use fxhash::{FxBuildHasher, FxHashMap};
pub use health::{Finding, HealthConfig, Severity};
pub use kernel::{JoinHandle, Sim, TaskId};
pub use memprof::{MemProf, MemScope, MemSnapshot, MemTag};
pub use par::{Envelope, Outbox, ParSim, ShardApp};
pub use rng::SimRng;
pub use stats::{MetricsSnapshot, Stats};
pub use time::{SimDuration, SimTime};
pub use timeline::{SeriesId, SeriesKind, Timeline, TimelineDoc, TimelineSnapshot, WindowSample};
pub use trace::{ChromeTrace, TraceValue, Tracer, TrackId};
