//! Message-lifecycle flight recorder.
//!
//! While [`crate::trace`] records flat spans for human inspection, the flight
//! recorder captures *attributed* lifecycle data: every operation issued by
//! higher layers gets a unique [`OpId`], and every interval of simulated time
//! the operation spends somewhere (an injection FIFO, a torus link, a target
//! work queue, a progress-engine lock) is recorded as a [`Segment`] tagged
//! with a [`SegCategory`]. The [`crate::critpath`] analyzer replays these
//! segments to compute a critical-path time breakdown and a per-link
//! contention heatmap.
//!
//! Like the [`crate::Tracer`], the recorder is **disabled by default**: every
//! recording call short-circuits on one `Cell<bool>` read, so instrumented
//! code costs nothing unless [`FlightRecorder::enable`] was called. Storage
//! is capacity-bounded; once the budget is exhausted further records are
//! counted in [`FlightRecorder::dropped`] instead of stored.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::memprof::{self, MemTag};
use crate::time::SimTime;

/// Flight-recorder op/segment/link-use storage.
static FLIGHT_TAG: MemTag = MemTag::new("desim.flight");

/// Unique identifier of one application-level operation (e.g. one ARMCI get,
/// put, accumulate or atomic). Allocated by [`FlightRecorder::begin_op`] and
/// threaded through every layer the operation's messages traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

/// What an operation was doing during a recorded [`Segment`].
///
/// The taxonomy follows the paper's attribution axes: CPU overheads and
/// handler execution are *compute*; time spent in FIFOs behind earlier
/// traffic (or behind an active service batch) is *queueing*; header flight
/// and payload serialization are *wire*; waiting for a shared resource held
/// by someone else (a torus link, the context lock) is *contention*; and time
/// a request sits at its target with **nobody driving the progress engine**
/// is *progress starvation* — the §III-D pathology the asynchronous progress
/// thread eliminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegCategory {
    /// CPU work: send/receive overheads, handler execution, packing.
    Compute,
    /// Waiting in a FIFO behind earlier traffic or an active service batch.
    Queueing,
    /// Header flight time plus payload serialization on the wire.
    Wire,
    /// Waiting for a busy shared resource (torus link, context lock).
    Contention,
    /// Sitting unserviced at the target while no one drives progress.
    Starvation,
    /// Waiting out a timeout + backoff before retransmitting a message the
    /// fault layer dropped (dead link or corrupted packet).
    Retry,
}

impl SegCategory {
    /// All categories, in canonical (reporting) order.
    pub const ALL: [SegCategory; 6] = [
        SegCategory::Compute,
        SegCategory::Queueing,
        SegCategory::Wire,
        SegCategory::Contention,
        SegCategory::Starvation,
        SegCategory::Retry,
    ];

    /// Stable lower-case name, used as a JSON key.
    pub fn name(self) -> &'static str {
        match self {
            SegCategory::Compute => "compute",
            SegCategory::Queueing => "queueing",
            SegCategory::Wire => "wire",
            SegCategory::Contention => "contention",
            SegCategory::Starvation => "starvation",
            SegCategory::Retry => "retry",
        }
    }

    /// Index into per-category accumulator arrays (matches [`Self::ALL`]).
    pub fn index(self) -> usize {
        match self {
            SegCategory::Compute => 0,
            SegCategory::Queueing => 1,
            SegCategory::Wire => 2,
            SegCategory::Contention => 3,
            SegCategory::Starvation => 4,
            SegCategory::Retry => 5,
        }
    }
}

/// One attributed interval of an operation's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The operation this interval belongs to.
    pub op: OpId,
    /// What the operation was doing.
    pub cat: SegCategory,
    /// Stable label of the mechanism (e.g. `net.link_wait`, `pami.starved`).
    pub label: &'static str,
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive). Always `> start`.
    pub end: SimTime,
}

/// Per-operation metadata: who issued it, what it was, and its overall span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation id (equals its allocation order).
    pub op: OpId,
    /// Rank that issued the operation.
    pub rank: u32,
    /// Stable operation kind (e.g. `armci.get`, `armci.rmw`).
    pub kind: &'static str,
    /// Issue time.
    pub issue: SimTime,
    /// Completion time (initiator-side). Equals `issue` until
    /// [`FlightRecorder::end_op`] is called.
    pub end: SimTime,
}

/// One message's passage through one directed link: when it asked for the
/// link, when the link was granted, and when its payload released it. The
/// gap `grant - request` is the contention wait; `release - grant` is the
/// occupancy. Overlapping request/occupancy intervals on a link are exactly
/// what the contention heatmap aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkUse {
    /// Interned link id (see [`FlightRecorder::link_id`]).
    pub link: u32,
    /// When the message's header arrived at the link.
    pub request: SimTime,
    /// When the link became free for it (`>= request`).
    pub grant: SimTime,
    /// When the payload finished draining off the link.
    pub release: SimTime,
    /// Operation the message belongs to, if attributed.
    pub op: Option<OpId>,
}

#[derive(Default)]
struct FlightInner {
    enabled: Cell<bool>,
    capacity: Cell<usize>,
    next_op: Cell<u64>,
    ops: RefCell<Vec<OpRecord>>,
    segments: RefCell<Vec<Segment>>,
    link_uses: RefCell<Vec<LinkUse>>,
    /// Link names in creation order; index == interned id. Deterministic
    /// because the simulation is.
    links: RefCell<Vec<String>>,
    /// Ids of `links` sorted by name, so interning is a binary search
    /// instead of a linear scan (ids stay creation-ordered).
    link_index: RefCell<Vec<u32>>,
    dropped: Cell<u64>,
}

/// Shared, cheaply-cloneable lifecycle recorder (like [`crate::Tracer`]).
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Rc<FlightInner>,
}

impl FlightRecorder {
    /// New disabled recorder. Usually obtained via `Sim::flight()` instead.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Whether lifecycle data is currently being recorded.
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Start recording, keeping at most `capacity` of each record kind
    /// (operations, segments, link uses). Past the budget, new records are
    /// counted in [`FlightRecorder::dropped`] and discarded, so early history
    /// stays intact.
    pub fn enable(&self, capacity: usize) {
        self.inner.capacity.set(capacity.max(1));
        self.inner.enabled.set(true);
    }

    /// Stop recording. Already-captured records are retained.
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// Allocate an [`OpId`] for an operation issued by `rank` at `now`.
    /// Returns `None` when disabled (or over budget) so instrumentation sites
    /// can skip all further attribution work.
    pub fn begin_op(&self, now: SimTime, rank: u32, kind: &'static str) -> Option<OpId> {
        if !self.on() {
            return None;
        }
        let _mem = memprof::scope(&FLIGHT_TAG);
        let mut ops = self.inner.ops.borrow_mut();
        if ops.len() >= self.inner.capacity.get() {
            self.inner.dropped.set(self.inner.dropped.get() + 1);
            return None;
        }
        let id = OpId(self.inner.next_op.get());
        self.inner.next_op.set(id.0 + 1);
        ops.push(OpRecord {
            op: id,
            rank,
            kind,
            issue: now,
            end: now,
        });
        Some(id)
    }

    /// Mark `op` complete (initiator-side) at `now`.
    pub fn end_op(&self, op: OpId, now: SimTime) {
        if !self.on() {
            return;
        }
        let mut ops = self.inner.ops.borrow_mut();
        // Ops are appended in id order, so the index equals the id.
        if let Some(rec) = ops.get_mut(op.0 as usize) {
            debug_assert_eq!(rec.op, op);
            rec.end = now;
        }
    }

    /// Record an attributed interval `[start, end)` for `op`. Zero-length
    /// intervals are ignored.
    pub fn segment(
        &self,
        op: OpId,
        cat: SegCategory,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.on() || end <= start {
            return;
        }
        let _mem = memprof::scope(&FLIGHT_TAG);
        let mut segs = self.inner.segments.borrow_mut();
        if segs.len() >= self.inner.capacity.get() {
            self.inner.dropped.set(self.inner.dropped.get() + 1);
            return;
        }
        segs.push(Segment {
            op,
            cat,
            label,
            start,
            end,
        });
    }

    /// Intern a link by name, returning its id. Ids are assigned in first-use
    /// order (so existing id streams are unchanged); lookup goes through a
    /// name-sorted index, making interning O(log n) instead of a linear scan.
    /// Returns 0 without allocating when disabled.
    pub fn link_id(&self, name: &str) -> u32 {
        if !self.on() {
            return 0;
        }
        let _mem = memprof::scope(&FLIGHT_TAG);
        let mut links = self.inner.links.borrow_mut();
        let mut index = self.inner.link_index.borrow_mut();
        match index.binary_search_by(|&id| links[id as usize].as_str().cmp(name)) {
            Ok(pos) => index[pos],
            Err(pos) => {
                let id = links.len() as u32;
                links.push(name.to_string());
                index.insert(pos, id);
                id
            }
        }
    }

    /// Name of an interned link id (empty when unknown).
    pub fn link_name(&self, id: u32) -> String {
        self.inner
            .links
            .borrow()
            .get(id as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Record one message's passage through one link.
    pub fn link_use(
        &self,
        link: u32,
        request: SimTime,
        grant: SimTime,
        release: SimTime,
        op: Option<OpId>,
    ) {
        if !self.on() {
            return;
        }
        let _mem = memprof::scope(&FLIGHT_TAG);
        let mut uses = self.inner.link_uses.borrow_mut();
        if uses.len() >= self.inner.capacity.get() {
            self.inner.dropped.set(self.inner.dropped.get() + 1);
            return;
        }
        uses.push(LinkUse {
            link,
            request,
            grant,
            release,
            op,
        });
    }

    /// Snapshot of all operation records, in allocation order.
    pub fn ops(&self) -> Vec<OpRecord> {
        self.inner.ops.borrow().clone()
    }

    /// Snapshot of all recorded segments, in recording order.
    pub fn segments(&self) -> Vec<Segment> {
        self.inner.segments.borrow().clone()
    }

    /// Snapshot of all recorded link uses, in recording order.
    pub fn link_uses(&self) -> Vec<LinkUse> {
        self.inner.link_uses.borrow().clone()
    }

    /// Number of recorded segments.
    pub fn len(&self) -> usize {
        self.inner.segments.borrow().len()
    }

    /// True when no segments were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records discarded because a capacity budget was exhausted.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Drop all recorded data (does not change enablement).
    pub fn clear(&self) {
        self.inner.ops.borrow_mut().clear();
        self.inner.segments.borrow_mut().clear();
        self.inner.link_uses.borrow_mut().clear();
        self.inner.links.borrow_mut().clear();
        self.inner.link_index.borrow_mut().clear();
        self.inner.next_op.set(0);
        self.inner.dropped.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let fl = FlightRecorder::new();
        assert_eq!(fl.begin_op(t(0), 0, "armci.get"), None);
        fl.segment(OpId(0), SegCategory::Wire, "x", t(0), t(1));
        fl.link_use(0, t(0), t(0), t(1), None);
        assert!(fl.is_empty());
        assert!(fl.ops().is_empty());
        assert!(fl.link_uses().is_empty());
        assert_eq!(fl.dropped(), 0);
    }

    #[test]
    fn op_lifecycle_and_segments() {
        let fl = FlightRecorder::new();
        fl.enable(64);
        let a = fl.begin_op(t(0), 3, "armci.rmw").unwrap();
        let b = fl.begin_op(t(1), 4, "armci.get").unwrap();
        assert_ne!(a, b);
        fl.segment(a, SegCategory::Wire, "net.header", t(0), t(2));
        fl.segment(a, SegCategory::Starvation, "pami.starved", t(2), t(5));
        fl.end_op(a, t(6));
        let ops = fl.ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].end, t(6));
        assert_eq!(ops[1].end, t(1), "unended op keeps issue time");
        assert_eq!(fl.segments().len(), 2);
    }

    #[test]
    fn zero_length_segments_are_skipped() {
        let fl = FlightRecorder::new();
        fl.enable(8);
        let op = fl.begin_op(t(0), 0, "x").unwrap();
        fl.segment(op, SegCategory::Queueing, "q", t(3), t(3));
        fl.segment(op, SegCategory::Queueing, "q", t(3), t(2));
        assert!(fl.is_empty());
    }

    #[test]
    fn capacity_budget_drops_and_counts() {
        let fl = FlightRecorder::new();
        fl.enable(2);
        let op = fl.begin_op(t(0), 0, "x").unwrap();
        for i in 0..5 {
            fl.segment(op, SegCategory::Compute, "c", t(i), t(i + 1));
        }
        assert_eq!(fl.len(), 2);
        assert_eq!(fl.dropped(), 3);
        // Early records survive (head-preserving, unlike the tracer's ring).
        assert_eq!(fl.segments()[0].start, t(0));
    }

    #[test]
    fn links_are_interned() {
        let fl = FlightRecorder::new();
        fl.enable(8);
        let a = fl.link_id("(0,0,0,0,0)+A");
        let b = fl.link_id("(1,0,0,0,0)+A");
        assert_ne!(a, b);
        assert_eq!(fl.link_id("(0,0,0,0,0)+A"), a);
        assert_eq!(fl.link_name(b), "(1,0,0,0,0)+A");
        fl.link_use(a, t(0), t(1), t(2), None);
        assert_eq!(fl.link_uses().len(), 1);
    }

    #[test]
    fn link_ids_stay_creation_ordered_under_sorted_index() {
        // The sorted lookup index must not change the id assignment: ids are
        // handed out in first-use order regardless of name order.
        let fl = FlightRecorder::new();
        fl.enable(8);
        let names: Vec<String> = (0..100u32).rev().map(|i| format!("link-{i:03}")).collect();
        for (expect, name) in names.iter().enumerate() {
            assert_eq!(fl.link_id(name), expect as u32);
        }
        // Re-interning any of them (in a different order) finds the same id.
        for (expect, name) in names.iter().enumerate() {
            assert_eq!(fl.link_id(name), expect as u32, "{name}");
            assert_eq!(fl.link_name(expect as u32), *name);
        }
        // clear() resets both the names and the index.
        fl.clear();
        assert_eq!(fl.link_id("fresh"), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let fl = FlightRecorder::new();
        fl.enable(2);
        let op = fl.begin_op(t(0), 0, "x").unwrap();
        fl.segment(op, SegCategory::Wire, "w", t(0), t(1));
        fl.segment(op, SegCategory::Wire, "w", t(1), t(2));
        fl.segment(op, SegCategory::Wire, "w", t(2), t(3));
        assert!(fl.dropped() > 0);
        fl.clear();
        assert!(fl.is_empty());
        assert_eq!(fl.dropped(), 0);
        assert_eq!(fl.begin_op(t(9), 0, "y"), Some(OpId(0)));
    }
}
