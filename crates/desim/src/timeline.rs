//! Windowed time-series telemetry: deterministic counter/gauge timelines.
//!
//! A [`Timeline`] buckets samples into fixed-width windows of virtual time
//! (`window_ps` picoseconds). Counters accumulate per-window deltas; gauges
//! keep per-window min/max/last. Series are interned by name into cheap
//! [`SeriesId`] handles so the hot path never hashes strings.
//!
//! Like [`crate::Tracer`], a timeline is **disabled by default** and free
//! when disabled: every record call is a single flag check. Producers that
//! cannot afford even that keep an `Option` of pre-interned ids instead and
//! skip the call entirely.
//!
//! Series length is bounded: when any series would exceed `max_windows`,
//! the whole timeline **coarsens** — `window_ps` doubles and adjacent window
//! pairs merge (counter sums add; gauge min/max fold, `last` comes from the
//! later half). Merging is exact: the coarsened timeline is byte-identical
//! to re-sampling the same stream at the doubled width, so downsampling
//! never invents or loses data relative to a coarser recording.
//!
//! Export is the fixed-schema `timeline-v1` JSON (see [`TimelineDoc`]),
//! written with [`crate::json`] so output is deterministic, and parsed back
//! with the same module so tools ([`crate::health`], `simstat`) operate
//! identically on live snapshots and loaded files.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::json::{self, JsonValue};
use crate::memprof::{self, MemTag};
use crate::time::SimTime;

/// Series storage and window vectors (memory-profiler attribution).
static TIMELINE_TAG: MemTag = MemTag::new("desim.timeline");

/// Interned handle for one series. Copy, cheap, stable for the lifetime of
/// the timeline. The sentinel value (from interning on a disabled timeline)
/// makes every record call a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(pub(crate) u32);

/// Sentinel id handed out while the timeline is disabled.
const NO_SERIES: u32 = u32::MAX;

/// What a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone event/quantity accumulation; each window holds the delta sum.
    Counter,
    /// Sampled live state; each window holds min/max/last of the samples.
    Gauge,
}

impl SeriesKind {
    /// Schema string used in `timeline-v1` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One gauge window: min/max/last of the samples that landed in it.
/// `last_at` orders samples within the window so out-of-order recording
/// (arrival times computed ahead of `now`) still yields the true last value.
#[derive(Debug, Clone, Copy)]
struct GaugeWin {
    idx: u64,
    min: i64,
    max: i64,
    last: i64,
    last_at: u64,
}

/// Per-series window storage, kept sorted by window index.
#[derive(Debug)]
enum Windows {
    Counter(Vec<(u64, u64)>),
    Gauge(Vec<GaugeWin>),
}

impl Windows {
    fn len(&self) -> usize {
        match self {
            Windows::Counter(v) => v.len(),
            Windows::Gauge(v) => v.len(),
        }
    }
}

#[derive(Debug)]
struct Series {
    name: String,
    windows: Windows,
}

#[derive(Debug)]
struct TimelineInner {
    enabled: Cell<bool>,
    window_ps: Cell<u64>,
    max_windows: Cell<usize>,
    series: RefCell<Vec<Series>>,
}

/// Shared handle to a windowed telemetry recorder. Clones share state.
#[derive(Clone, Debug)]
pub struct Timeline {
    inner: Rc<TimelineInner>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// New disabled timeline. Recording is free until [`Timeline::enable`].
    pub fn new() -> Timeline {
        Timeline {
            inner: Rc::new(TimelineInner {
                enabled: Cell::new(false),
                window_ps: Cell::new(1),
                max_windows: Cell::new(usize::MAX),
                series: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Enable recording with `window_ps`-wide windows and at most
    /// `max_windows` windows per series (coarsening doubles the width when
    /// the cap would be exceeded). Clears any previously recorded data.
    pub fn enable(&self, window_ps: u64, max_windows: usize) {
        assert!(window_ps > 0, "window_ps must be positive");
        assert!(max_windows >= 2, "max_windows must be at least 2");
        self.inner.enabled.set(true);
        self.inner.window_ps.set(window_ps);
        self.inner.max_windows.set(max_windows);
        self.inner.series.borrow_mut().clear();
    }

    /// Stop recording; data already collected stays readable.
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// Is the timeline currently recording?
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Current window width in picoseconds (grows if coarsening kicked in).
    pub fn window_ps(&self) -> u64 {
        self.inner.window_ps.get()
    }

    /// Intern a series by name. Returns a sentinel no-op id while disabled,
    /// so producers can intern eagerly without cost. Interning the same name
    /// twice returns the same id; the kind must match.
    pub fn series(&self, name: &str, kind: SeriesKind) -> SeriesId {
        if !self.on() {
            return SeriesId(NO_SERIES);
        }
        let _mem = memprof::scope(&TIMELINE_TAG);
        let mut series = self.inner.series.borrow_mut();
        if let Some(i) = series.iter().position(|s| s.name == name) {
            let have = match series[i].windows {
                Windows::Counter(_) => SeriesKind::Counter,
                Windows::Gauge(_) => SeriesKind::Gauge,
            };
            assert!(
                have == kind,
                "series {name:?} re-interned with a different kind"
            );
            return SeriesId(i as u32);
        }
        series.push(Series {
            name: name.to_string(),
            windows: match kind {
                SeriesKind::Counter => Windows::Counter(Vec::new()),
                SeriesKind::Gauge => Windows::Gauge(Vec::new()),
            },
        });
        SeriesId((series.len() - 1) as u32)
    }

    /// Add `delta` to a counter series in the window containing `at`.
    #[inline]
    pub fn add(&self, id: SeriesId, at: SimTime, delta: u64) {
        if !self.on() || id.0 == NO_SERIES || delta == 0 {
            return;
        }
        self.add_slow(id, at, delta);
    }

    fn add_slow(&self, id: SeriesId, at: SimTime, delta: u64) {
        let _mem = memprof::scope(&TIMELINE_TAG);
        let w = self.inner.window_ps.get();
        let idx = at.as_ps() / w;
        {
            let mut series = self.inner.series.borrow_mut();
            let Windows::Counter(v) = &mut series[id.0 as usize].windows else {
                panic!("Timeline::add on a gauge series");
            };
            match v.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(p) => v[p].1 += delta,
                Err(p) => v.insert(p, (idx, delta)),
            }
        }
        self.coarsen_if_needed();
    }

    /// Spread a busy span `[start, end)` over the windows it overlaps,
    /// adding the overlapped picoseconds to a counter series per window.
    /// This is how occupancy fractions are recorded exactly.
    pub fn add_range(&self, id: SeriesId, start: SimTime, end: SimTime) {
        if !self.on() || id.0 == NO_SERIES || end <= start {
            return;
        }
        let (s, e) = (start.as_ps(), end.as_ps());
        let mut cur = s;
        while cur < e {
            // Re-read the width each step: add_slow may coarsen mid-range.
            // Splitting finer than the (new, wider) windows stays exact —
            // the sub-spans land in the same window and their sums add.
            let w = self.inner.window_ps.get();
            let stop = ((cur / w + 1) * w).min(e);
            self.add_slow(id, SimTime(cur), stop - cur);
            cur = stop;
        }
    }

    /// Record a gauge sample `value` at time `at`.
    #[inline]
    pub fn gauge(&self, id: SeriesId, at: SimTime, value: i64) {
        if !self.on() || id.0 == NO_SERIES {
            return;
        }
        self.gauge_slow(id, at, value);
    }

    fn gauge_slow(&self, id: SeriesId, at: SimTime, value: i64) {
        let _mem = memprof::scope(&TIMELINE_TAG);
        let w = self.inner.window_ps.get();
        let t = at.as_ps();
        let idx = t / w;
        {
            let mut series = self.inner.series.borrow_mut();
            let Windows::Gauge(v) = &mut series[id.0 as usize].windows else {
                panic!("Timeline::gauge on a counter series");
            };
            match v.binary_search_by_key(&idx, |g| g.idx) {
                Ok(p) => {
                    let g = &mut v[p];
                    g.min = g.min.min(value);
                    g.max = g.max.max(value);
                    // Later-recorded wins on equal timestamps, matching the
                    // "most recent state" reading of a gauge.
                    if t >= g.last_at {
                        g.last = value;
                        g.last_at = t;
                    }
                }
                Err(p) => v.insert(
                    p,
                    GaugeWin {
                        idx,
                        min: value,
                        max: value,
                        last: value,
                        last_at: t,
                    },
                ),
            }
        }
        self.coarsen_if_needed();
    }

    /// If any series outgrew the cap, double the window width (repeatedly if
    /// needed) and merge adjacent pairs in **every** series, keeping all
    /// series aligned on one shared width.
    fn coarsen_if_needed(&self) {
        loop {
            let cap = self.inner.max_windows.get();
            let over = {
                let series = self.inner.series.borrow();
                series.iter().any(|s| s.windows.len() > cap)
            };
            if !over {
                return;
            }
            self.inner.window_ps.set(self.inner.window_ps.get() * 2);
            let mut series = self.inner.series.borrow_mut();
            for s in series.iter_mut() {
                match &mut s.windows {
                    Windows::Counter(v) => {
                        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(v.len() / 2 + 1);
                        for &(idx, sum) in v.iter() {
                            let ni = idx / 2;
                            match merged.last_mut() {
                                Some(m) if m.0 == ni => m.1 += sum,
                                _ => merged.push((ni, sum)),
                            }
                        }
                        *v = merged;
                    }
                    Windows::Gauge(v) => {
                        let mut merged: Vec<GaugeWin> = Vec::with_capacity(v.len() / 2 + 1);
                        for g in v.iter() {
                            let ni = g.idx / 2;
                            match merged.last_mut() {
                                Some(m) if m.idx == ni => {
                                    m.min = m.min.min(g.min);
                                    m.max = m.max.max(g.max);
                                    if g.last_at >= m.last_at {
                                        m.last = g.last;
                                        m.last_at = g.last_at;
                                    }
                                }
                                _ => merged.push(GaugeWin { idx: ni, ..*g }),
                            }
                        }
                        *v = merged;
                    }
                }
            }
        }
    }

    /// Number of interned series.
    pub fn series_count(&self) -> usize {
        self.inner.series.borrow().len()
    }

    /// Freeze the current contents into an immutable, name-sorted snapshot.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let series = self.inner.series.borrow();
        let mut out: Vec<SeriesSnapshot> = series
            .iter()
            .filter(|s| s.windows.len() > 0)
            .map(|s| SeriesSnapshot {
                name: s.name.clone(),
                kind: match s.windows {
                    Windows::Counter(_) => SeriesKind::Counter,
                    Windows::Gauge(_) => SeriesKind::Gauge,
                },
                windows: match &s.windows {
                    Windows::Counter(v) => v
                        .iter()
                        .map(|&(idx, sum)| WindowSample {
                            idx,
                            sum,
                            min: 0,
                            max: 0,
                            last: 0,
                        })
                        .collect(),
                    Windows::Gauge(v) => v
                        .iter()
                        .map(|g| WindowSample {
                            idx: g.idx,
                            sum: 0,
                            min: g.min,
                            max: g.max,
                            last: g.last,
                        })
                        .collect(),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        TimelineSnapshot {
            window_ps: self.inner.window_ps.get(),
            series: out,
        }
    }
}

/// One window of one exported series. For counters only `sum` is meaningful;
/// for gauges `min`/`max`/`last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Window index: the window covers `[idx*window_ps, (idx+1)*window_ps)`.
    pub idx: u64,
    /// Counter delta accumulated in this window.
    pub sum: u64,
    /// Smallest gauge sample seen in this window.
    pub min: i64,
    /// Largest gauge sample seen in this window.
    pub max: i64,
    /// Gauge sample with the greatest timestamp in this window.
    pub last: i64,
}

/// Immutable exported form of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name (e.g. `net.link_wait_ps`).
    pub name: String,
    /// Counter or gauge.
    pub kind: SeriesKind,
    /// Non-empty windows, sorted by index.
    pub windows: Vec<WindowSample>,
}

impl SeriesSnapshot {
    /// The headline value of a window: counter delta, or gauge `max`
    /// (the worst live state seen inside the window).
    pub fn headline(&self, w: &WindowSample) -> f64 {
        match self.kind {
            SeriesKind::Counter => w.sum as f64,
            SeriesKind::Gauge => w.max as f64,
        }
    }
}

/// Immutable exported form of one run's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSnapshot {
    /// Window width in picoseconds (after any coarsening).
    pub window_ps: u64,
    /// All non-empty series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

impl TimelineSnapshot {
    /// Find a series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Append this snapshot as a `timeline-v1` run object.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"window_ps\":");
        json::push_u64(out, self.window_ps);
        out.push_str(",\"series\":{");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(out, &s.name);
            out.push_str(":{\"kind\":\"");
            out.push_str(s.kind.as_str());
            out.push_str("\",\"windows\":[");
            for (j, w) in s.windows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                json::push_u64(out, w.idx);
                match s.kind {
                    SeriesKind::Counter => {
                        out.push(',');
                        json::push_u64(out, w.sum);
                    }
                    SeriesKind::Gauge => {
                        for v in [w.min, w.max, w.last] {
                            out.push(',');
                            push_i64(out, v);
                        }
                    }
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }

    fn from_json(v: &JsonValue) -> Result<TimelineSnapshot, String> {
        let window_ps = num_field(v, "window_ps")? as u64;
        let JsonValue::Obj(series_obj) = v
            .get("series")
            .ok_or_else(|| "run missing \"series\"".to_string())?
        else {
            return Err("\"series\" is not an object".into());
        };
        let mut series = Vec::with_capacity(series_obj.len());
        for (name, sv) in series_obj {
            let kind = match sv.get("kind").and_then(JsonValue::as_str) {
                Some("counter") => SeriesKind::Counter,
                Some("gauge") => SeriesKind::Gauge,
                _ => return Err(format!("series {name:?}: bad or missing \"kind\"")),
            };
            let JsonValue::Arr(wins) = sv
                .get("windows")
                .ok_or_else(|| format!("series {name:?} missing \"windows\""))?
            else {
                return Err(format!("series {name:?}: \"windows\" is not an array"));
            };
            let mut windows = Vec::with_capacity(wins.len());
            for wv in wins {
                let JsonValue::Arr(cells) = wv else {
                    return Err(format!("series {name:?}: window is not an array"));
                };
                let n = |i: usize| -> Result<f64, String> {
                    cells
                        .get(i)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("series {name:?}: bad window cell {i}"))
                };
                windows.push(match kind {
                    SeriesKind::Counter => WindowSample {
                        idx: n(0)? as u64,
                        sum: n(1)? as u64,
                        min: 0,
                        max: 0,
                        last: 0,
                    },
                    SeriesKind::Gauge => WindowSample {
                        idx: n(0)? as u64,
                        sum: 0,
                        min: n(1)? as i64,
                        max: n(2)? as i64,
                        last: n(3)? as i64,
                    },
                });
            }
            series.push(SeriesSnapshot {
                name: name.clone(),
                kind,
                windows,
            });
        }
        Ok(TimelineSnapshot { window_ps, series })
    }
}

/// A `timeline-v1` document: one bench, one or more named runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineDoc {
    /// Producing benchmark (e.g. `fig9_rmw`).
    pub bench: String,
    /// `(run name, snapshot)` pairs in emission order.
    pub runs: Vec<(String, TimelineSnapshot)>,
}

impl TimelineDoc {
    /// Serialize to deterministic `timeline-v1` JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"timeline-v1\",\"bench\":");
        json::push_str(&mut out, &self.bench);
        out.push_str(",\"runs\":{");
        for (i, (name, snap)) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            snap.push_json(&mut out);
        }
        out.push_str("}}\n");
        out
    }

    /// Parse a `timeline-v1` document produced by [`TimelineDoc::to_json`].
    pub fn parse(text: &str) -> Result<TimelineDoc, String> {
        let v = json::parse(text)?;
        match v.get("schema").and_then(JsonValue::as_str) {
            Some("timeline-v1") => {}
            other => return Err(format!("not a timeline-v1 document (schema={other:?})")),
        }
        let bench = v
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing \"bench\"".to_string())?
            .to_string();
        let JsonValue::Obj(runs_obj) = v
            .get("runs")
            .ok_or_else(|| "missing \"runs\"".to_string())?
        else {
            return Err("\"runs\" is not an object".into());
        };
        let mut runs = Vec::with_capacity(runs_obj.len());
        for (name, rv) in runs_obj {
            runs.push((name.clone(), TimelineSnapshot::from_json(rv)?));
        }
        Ok(TimelineDoc { bench, runs })
    }
}

fn push_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
        json::push_u64(out, v.unsigned_abs());
    } else {
        json::push_u64(out, v as u64);
    }
}

fn num_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn t(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }

    #[test]
    fn disabled_timeline_is_inert() {
        let tl = Timeline::new();
        assert!(!tl.on());
        let id = tl.series("x", SeriesKind::Counter);
        tl.add(id, t(1), 5);
        tl.gauge(id, t(1), 5);
        tl.add_range(id, t(0), t(10));
        assert_eq!(tl.series_count(), 0);
        assert!(tl.snapshot().series.is_empty());
    }

    #[test]
    fn counters_bucket_by_window() {
        let tl = Timeline::new();
        tl.enable(1_000_000, 1024); // 1 µs windows
        let id = tl.series("c", SeriesKind::Counter);
        tl.add(id, t(0), 1);
        tl.add(id, t(0), 2);
        tl.add(id, t(3), 10);
        tl.add(id, t(1), 4); // out-of-order window is fine
        let snap = tl.snapshot();
        let s = snap.series("c").unwrap();
        assert_eq!(
            s.windows.iter().map(|w| (w.idx, w.sum)).collect::<Vec<_>>(),
            vec![(0, 3), (1, 4), (3, 10)]
        );
    }

    #[test]
    fn gauges_track_min_max_last() {
        let tl = Timeline::new();
        tl.enable(1_000_000, 1024);
        let id = tl.series("g", SeriesKind::Gauge);
        tl.gauge(id, SimTime(100), 5);
        tl.gauge(id, SimTime(900), -2);
        tl.gauge(id, SimTime(500), 9); // out of order: not "last"
        let snap = tl.snapshot();
        let w = snap.series("g").unwrap().windows[0];
        assert_eq!((w.min, w.max, w.last), (-2, 9, -2));
    }

    #[test]
    fn add_range_splits_across_windows_exactly() {
        let tl = Timeline::new();
        tl.enable(1_000_000, 1024);
        let id = tl.series("busy", SeriesKind::Counter);
        // 0.5 µs .. 2.25 µs: 0.5 in w0, 1.0 in w1, 0.25 in w2.
        tl.add_range(id, SimTime(500_000), SimTime(2_250_000));
        let snap = tl.snapshot();
        let s = snap.series("busy").unwrap();
        assert_eq!(
            s.windows.iter().map(|w| (w.idx, w.sum)).collect::<Vec<_>>(),
            vec![(0, 500_000), (1, 1_000_000), (2, 250_000)]
        );
        let total: u64 = s.windows.iter().map(|w| w.sum).sum();
        assert_eq!(total, 1_750_000);
    }

    #[test]
    fn coarsening_matches_resampling_at_doubled_width() {
        // Satellite: downsampling-by-merging is exact. Record one random
        // stream into (a) a capped timeline that is forced to coarsen and
        // (b) an uncapped timeline already at the final width; snapshots
        // must be identical, JSON bytes included.
        let mut rng = SimRng::new(0x71AE_11FE);
        let mut samples = Vec::new();
        for _ in 0..4_000 {
            let at = SimTime(rng.next_below(64_000_000)); // 0..64 µs
            let kind = rng.next_below(3);
            let val = rng.next_below(100) as i64 - 50;
            samples.push((at, kind, val));
        }

        let record = |tl: &Timeline| {
            let c = tl.series("cnt", SeriesKind::Counter);
            let g = tl.series("gau", SeriesKind::Gauge);
            let r = tl.series("rng", SeriesKind::Counter);
            for &(at, kind, val) in &samples {
                match kind {
                    0 => tl.add(c, at, val.unsigned_abs()),
                    1 => tl.gauge(g, at, val),
                    _ => tl.add_range(r, at, SimTime(at.as_ps() + 3_500_000)),
                }
            }
        };
        let fine = Timeline::new();
        fine.enable(1_000_000, 16); // ~64 windows at 1 µs: must coarsen
        record(&fine);
        assert!(
            fine.window_ps() > 1_000_000,
            "fine timeline should have coarsened"
        );
        // Re-sample the same stream at the final width directly: must be
        // indistinguishable from the coarsened recording.
        let coarse = Timeline::new();
        coarse.enable(fine.window_ps(), usize::MAX >> 1);
        record(&coarse);
        let (a, b) = (fine.snapshot(), coarse.snapshot());
        assert_eq!(a, b);
        let (mut ja, mut jb) = (String::new(), String::new());
        a.push_json(&mut ja);
        b.push_json(&mut jb);
        assert_eq!(ja, jb);
    }

    #[test]
    fn json_roundtrip_preserves_doc() {
        let tl = Timeline::new();
        tl.enable(2_000_000, 64);
        let c = tl.series("b.cnt", SeriesKind::Counter);
        let g = tl.series("a.gauge", SeriesKind::Gauge);
        tl.add(c, t(1), 7);
        tl.add(c, t(5), 3);
        tl.gauge(g, t(2), -4);
        tl.gauge(g, t(2), 11);
        let doc = TimelineDoc {
            bench: "unit".to_string(),
            runs: vec![("r0".to_string(), tl.snapshot())],
        };
        let text = doc.to_json();
        assert!(text.starts_with("{\"schema\":\"timeline-v1\",\"bench\":\"unit\""));
        let back = TimelineDoc::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_json(), text);
        // Series are emitted sorted by name.
        let names: Vec<&str> = doc.runs[0]
            .1
            .series
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["a.gauge", "b.cnt"]);
    }

    #[test]
    fn enable_clears_previous_data() {
        let tl = Timeline::new();
        tl.enable(1_000_000, 64);
        let c = tl.series("c", SeriesKind::Counter);
        tl.add(c, t(1), 1);
        tl.enable(1_000_000, 64);
        assert_eq!(tl.series_count(), 0);
    }
}
