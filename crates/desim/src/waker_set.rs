//! Keyed waker storage shared by the simulation primitives.
//!
//! Futures in this crate are frequently raced against each other (e.g. a
//! progress loop racing "operation complete" against "work arrived"), so the
//! losing future is dropped and may be re-created many times. Naively pushing
//! `cx.waker()` on every poll would leak one waker per drop and wake the task
//! once per stale entry — a quadratic wake amplification that can stall the
//! event loop. [`WakerSet`] gives every waiting future a keyed slot instead:
//! re-polling *replaces* the slot, dropping the future *removes* it.

use std::task::Waker;

/// A set of wakers keyed by a per-future registration id.
#[derive(Default, Debug)]
pub struct WakerSet {
    next_id: u64,
    entries: Vec<(u64, Waker)>,
}

impl WakerSet {
    /// Create an empty set.
    pub fn new() -> WakerSet {
        WakerSet::default()
    }

    /// Register (or refresh) the waker for the future identified by `slot`.
    /// A `None` slot is assigned a fresh id, stored back into `slot`.
    pub fn register(&mut self, slot: &mut Option<u64>, waker: &Waker) {
        match *slot {
            Some(id) => match self.entries.iter_mut().find(|(eid, _)| *eid == id) {
                // Kernel task wakers are stable across polls, so refreshing
                // an existing entry is usually a no-op — skip the clone.
                Some(e) => {
                    if !e.1.will_wake(waker) {
                        e.1 = waker.clone();
                    }
                }
                None => self.entries.push((id, waker.clone())),
            },
            None => {
                let id = self.next_id;
                self.next_id += 1;
                *slot = Some(id);
                self.entries.push((id, waker.clone()));
            }
        }
    }

    /// Remove the waker registered under `slot` (future dropped or done).
    pub fn remove(&mut self, slot: &Option<u64>) {
        if let Some(id) = slot {
            self.entries.retain(|(eid, _)| eid != id);
        }
    }

    /// Take every waker out of the set (to wake outside any borrow).
    pub fn take_all(&mut self) -> Vec<Waker> {
        self.entries.drain(..).map(|(_, w)| w).collect()
    }

    /// Take the longest-registered waker, if any.
    pub fn take_first(&mut self) -> Option<Waker> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0).1)
        }
    }

    /// Number of registered wakers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no wakers are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::task::Wake;

    struct Flag;
    impl Wake for Flag {
        fn wake(self: Arc<Self>) {}
    }

    fn waker() -> Waker {
        Waker::from(Arc::new(Flag))
    }

    #[test]
    fn register_assigns_and_refreshes_slot() {
        let mut s = WakerSet::new();
        let mut slot = None;
        s.register(&mut slot, &waker());
        assert!(slot.is_some());
        assert_eq!(s.len(), 1);
        // Re-registering the same slot must not grow the set.
        s.register(&mut slot, &waker());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_clears_entry() {
        let mut s = WakerSet::new();
        let mut a = None;
        let mut b = None;
        s.register(&mut a, &waker());
        s.register(&mut b, &waker());
        assert_eq!(s.len(), 2);
        s.remove(&a);
        assert_eq!(s.len(), 1);
        s.remove(&a); // idempotent
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn take_all_empties() {
        let mut s = WakerSet::new();
        let mut a = None;
        s.register(&mut a, &waker());
        assert_eq!(s.take_all().len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn take_first_is_fifo() {
        let mut s = WakerSet::new();
        let (mut a, mut b) = (None, None);
        s.register(&mut a, &waker());
        s.register(&mut b, &waker());
        s.take_first();
        assert_eq!(s.len(), 1);
        // Remaining entry must be b's.
        s.remove(&b);
        assert!(s.is_empty());
    }

    #[test]
    fn register_after_take_reinserts() {
        let mut s = WakerSet::new();
        let mut a = None;
        s.register(&mut a, &waker());
        s.take_all();
        // Slot id survives; re-registration reinserts rather than duplicating.
        s.register(&mut a, &waker());
        assert_eq!(s.len(), 1);
    }
}
