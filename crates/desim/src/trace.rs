//! Deterministic structured event tracing on virtual time.
//!
//! Every [`crate::Sim`] owns a [`Tracer`]. It is **disabled by default** and
//! in that state every recording call is a branch on one `Cell<bool>` and an
//! immediate return — no allocation, no counter update, nothing observable.
//! Call [`Tracer::enable`] to start capturing into a bounded ring buffer of
//! structured events:
//!
//! * [`Tracer::span_begin`] / [`Tracer::span_end`] bracket an operation on a
//!   *track* (one horizontal lane in a trace viewer — typically one rank, or
//!   a rank's async progress thread);
//! * [`Tracer::instant`] marks a point event;
//! * every event carries the virtual [`SimTime`], a static name and typed
//!   [`TraceValue`] attributes.
//!
//! [`ChromeTrace`] serializes one or more tracers into the Chrome
//! trace-event JSON format, loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`. Each tracer becomes a *process*; each track a
//! *thread*. Events are exported sorted by `(virtual time, recording
//! sequence)` — the per-tracer sequence number breaks ties between events at
//! the same instant deterministically, so late-recorded events with in-run
//! timestamps (timeline counters, health instants) merge into time order and
//! two runs of the same seeded simulation serialize to byte-identical JSON.
//! [`ChromeTrace::add_counters`] additionally serializes a
//! [`crate::timeline::TimelineSnapshot`] as Perfetto *counter tracks*
//! (`"ph":"C"`), one counter per series, so windowed telemetry renders as
//! graphs time-aligned with the spans.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::json;
use crate::memprof::{self, MemTag};
use crate::time::SimTime;

/// Trace ring buffer, track names and event payloads.
static TRACE_TAG: MemTag = MemTag::new("desim.trace");

/// A typed attribute value attached to a trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceValue {
    /// Static string (protocol path names, modes, …).
    Str(&'static str),
    /// Unsigned integer (bytes, ranks, counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Str(s) => write!(f, "{s}"),
            TraceValue::U64(v) => write!(f, "{v}"),
            TraceValue::I64(v) => write!(f, "{v}"),
            TraceValue::F64(v) => write!(f, "{v}"),
            TraceValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Identifier of a track (a lane in the trace viewer), from
/// [`Tracer::track`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
    Instant,
}

struct TraceEvent {
    phase: Phase,
    name: &'static str,
    at: SimTime,
    track: TrackId,
    /// Monotone per-tracer recording sequence; tie-breaks events recorded at
    /// the same virtual time so export order is fully specified.
    seq: u64,
    args: Vec<(&'static str, TraceValue)>,
}

#[derive(Default)]
struct TracerInner {
    enabled: Cell<bool>,
    capacity: Cell<usize>,
    events: RefCell<VecDeque<TraceEvent>>,
    next_seq: Cell<u64>,
    dropped: Cell<u64>,
    /// Track names in creation order; index == `TrackId`. Creation order is
    /// deterministic because the simulation is.
    tracks: RefCell<Vec<String>>,
}

/// Ring-buffered structured event recorder. Cheaply cloneable; all clones
/// share state (like [`crate::Stats`]).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Rc<TracerInner>,
}

impl Tracer {
    /// New disabled tracer. Usually obtained via `Sim::tracer()` instead.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Whether events are currently being recorded. Instrumentation sites
    /// should guard any argument construction (`format!`, attribute slices)
    /// behind this so a disabled tracer costs a single predictable branch.
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Start recording, keeping at most `capacity` events (oldest dropped
    /// first, counted in [`Tracer::dropped`]).
    pub fn enable(&self, capacity: usize) {
        self.inner.capacity.set(capacity.max(1));
        self.inner.enabled.set(true);
    }

    /// Stop recording. Already-captured events are retained.
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// Intern a track by name, returning its id. Repeated calls with the same
    /// name return the same id. Returns `TrackId(0)` without allocating when
    /// disabled.
    pub fn track(&self, name: &str) -> TrackId {
        if !self.on() {
            return TrackId(0);
        }
        let _mem = memprof::scope(&TRACE_TAG);
        let mut tracks = self.inner.tracks.borrow_mut();
        if let Some(i) = tracks.iter().position(|t| t == name) {
            return TrackId(i as u32);
        }
        tracks.push(name.to_string());
        TrackId((tracks.len() - 1) as u32)
    }

    fn push(&self, mut ev: TraceEvent) {
        let _mem = memprof::scope(&TRACE_TAG);
        ev.seq = self.inner.next_seq.get();
        self.inner.next_seq.set(ev.seq + 1);
        let mut events = self.inner.events.borrow_mut();
        if events.len() >= self.inner.capacity.get() {
            events.pop_front();
            self.inner.dropped.set(self.inner.dropped.get() + 1);
        }
        events.push_back(ev);
    }

    /// Open a span named `name` on `track` at virtual time `at`.
    #[inline]
    pub fn span_begin(
        &self,
        track: TrackId,
        name: &'static str,
        at: SimTime,
        args: &[(&'static str, TraceValue)],
    ) {
        if !self.on() {
            return;
        }
        self.push(TraceEvent {
            phase: Phase::Begin,
            name,
            at,
            track,
            seq: 0, // assigned in push()
            args: args.to_vec(),
        });
    }

    /// Close the innermost open span on `track` at virtual time `at`.
    /// `name` must match the corresponding [`Tracer::span_begin`].
    #[inline]
    pub fn span_end(
        &self,
        track: TrackId,
        name: &'static str,
        at: SimTime,
        args: &[(&'static str, TraceValue)],
    ) {
        if !self.on() {
            return;
        }
        self.push(TraceEvent {
            phase: Phase::End,
            name,
            at,
            track,
            seq: 0, // assigned in push()
            args: args.to_vec(),
        });
    }

    /// Record a point event.
    #[inline]
    pub fn instant(
        &self,
        track: TrackId,
        name: &'static str,
        at: SimTime,
        args: &[(&'static str, TraceValue)],
    ) {
        if !self.on() {
            return;
        }
        self.push(TraceEvent {
            phase: Phase::Instant,
            name,
            at,
            track,
            seq: 0, // assigned in push()
            args: args.to_vec(),
        });
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.events.borrow().len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring buffer since [`Tracer::enable`].
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Drop all buffered events and tracks (does not change enablement).
    pub fn clear(&self) {
        self.inner.events.borrow_mut().clear();
        self.inner.tracks.borrow_mut().clear();
        self.inner.dropped.set(0);
    }
}

/// Builder serializing one or more [`Tracer`]s to Chrome trace-event JSON.
///
/// Each added tracer becomes a distinct *process* (pid) in the viewer, so a
/// bench binary that runs several simulations (one per configuration) can
/// merge them into a single trace file.
pub struct ChromeTrace {
    out: String,
    first: bool,
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTrace {
    /// Start an empty trace document.
    pub fn new() -> ChromeTrace {
        ChromeTrace {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        self.out.push('\n');
    }

    fn meta(&mut self, pid: u64, tid: u64, what: &str, name: &str) {
        self.sep();
        self.out.push_str("{\"ph\":\"M\",\"pid\":");
        json::push_u64(&mut self.out, pid);
        self.out.push_str(",\"tid\":");
        json::push_u64(&mut self.out, tid);
        self.out.push_str(",\"name\":");
        json::push_str(&mut self.out, what);
        self.out.push_str(",\"args\":{\"name\":");
        json::push_str(&mut self.out, name);
        self.out.push_str("}}");
    }

    fn push_args(out: &mut String, args: &[(&'static str, TraceValue)]) {
        out.push('{');
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(out, k);
            out.push(':');
            match v {
                TraceValue::Str(s) => json::push_str(out, s),
                TraceValue::U64(n) => json::push_u64(out, *n),
                TraceValue::I64(n) => out.push_str(&format!("{n}")),
                TraceValue::F64(f) => json::push_f64(out, *f),
                TraceValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
    }

    /// Serialize `tracer`'s buffered events as process `pid` named `name`.
    /// When the tracer's ring buffer overflowed, the evicted-event count is
    /// surfaced as a `trace_dropped_events` metadata record so truncated
    /// traces are distinguishable from complete ones.
    pub fn add_process(&mut self, pid: u64, name: &str, tracer: &Tracer) {
        self.meta(pid, 0, "process_name", name);
        for (tid, track) in tracer.inner.tracks.borrow().iter().enumerate() {
            self.meta(pid, tid as u64, "thread_name", track);
        }
        if tracer.dropped() > 0 {
            self.sep();
            self.out.push_str("{\"ph\":\"M\",\"pid\":");
            json::push_u64(&mut self.out, pid);
            self.out
                .push_str(",\"tid\":0,\"name\":\"trace_dropped_events\",\"args\":{\"dropped\":");
            json::push_u64(&mut self.out, tracer.dropped());
            self.out.push_str("}}");
        }
        // Export in `(at, seq)` order rather than raw recording order: the
        // sequence number is monotone in recording order, so this is a
        // stable time sort. Events recorded after the fact with in-run
        // timestamps (health instants, late annotations) merge into their
        // proper place, and same-instant events keep a specified order.
        let events = tracer.inner.events.borrow();
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| (events[i].at, events[i].seq));
        for &i in &order {
            let ev = &events[i];
            self.sep();
            let ph = match ev.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            self.out.push_str("{\"ph\":\"");
            self.out.push_str(ph);
            self.out.push_str("\",\"pid\":");
            json::push_u64(&mut self.out, pid);
            self.out.push_str(",\"tid\":");
            json::push_u64(&mut self.out, ev.track.0 as u64);
            // Chrome trace timestamps are microseconds; keep picosecond
            // precision as a fraction.
            self.out.push_str(",\"ts\":");
            json::push_f64(&mut self.out, ev.at.as_ps() as f64 / 1e6);
            self.out.push_str(",\"name\":");
            json::push_str(&mut self.out, ev.name);
            if ev.phase == Phase::Instant {
                self.out.push_str(",\"s\":\"t\"");
            }
            if !ev.args.is_empty() {
                self.out.push_str(",\"args\":");
                Self::push_args(&mut self.out, &ev.args);
            }
            self.out.push('}');
        }
    }

    /// Serialize a timeline snapshot as Perfetto counter tracks under
    /// process `pid`: one `"ph":"C"` event per recorded window per series,
    /// stamped at the window's start time. Counter series plot the
    /// per-window delta sum; gauge series plot the window's last sample.
    /// Perfetto keys counters by `(pid, name)`, so merging these next to
    /// [`ChromeTrace::add_process`] spans of the same `pid` renders the
    /// telemetry graphs time-aligned with the span lanes.
    pub fn add_counters(&mut self, pid: u64, snap: &crate::timeline::TimelineSnapshot) {
        use crate::timeline::SeriesKind;
        for s in &snap.series {
            for w in &s.windows {
                self.sep();
                self.out.push_str("{\"ph\":\"C\",\"pid\":");
                json::push_u64(&mut self.out, pid);
                self.out.push_str(",\"tid\":0,\"ts\":");
                let ts_ps = w.idx * snap.window_ps;
                json::push_f64(&mut self.out, ts_ps as f64 / 1e6);
                self.out.push_str(",\"name\":");
                json::push_str(&mut self.out, &s.name);
                self.out.push_str(",\"args\":{\"value\":");
                match s.kind {
                    SeriesKind::Counter => json::push_u64(&mut self.out, w.sum),
                    SeriesKind::Gauge => {
                        if w.last < 0 {
                            self.out.push('-');
                            json::push_u64(&mut self.out, w.last.unsigned_abs());
                        } else {
                            json::push_u64(&mut self.out, w.last as u64);
                        }
                    }
                }
                self.out.push_str("}}");
            }
        }
    }

    /// Merge the events of `other` — built independently, e.g. on a sweep
    /// worker thread — into this trace, preserving their order. Byte-wise
    /// equivalent to having issued `other`'s `add_process` calls on `self`
    /// directly.
    pub fn absorb(&mut self, other: ChromeTrace) {
        const HEADER: &str = "{\"traceEvents\":[";
        debug_assert!(other.out.starts_with(HEADER));
        if other.first {
            return; // nothing recorded
        }
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        // The fragment body already starts with the '\n' its first sep wrote.
        self.out.push_str(&other.out[HEADER.len()..]);
    }

    /// Finish the document, returning the complete JSON string.
    pub fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::new();
        let track = tr.track("rank 0");
        assert_eq!(track, TrackId(0));
        tr.span_begin(track, "op", t(1), &[("bytes", TraceValue::U64(8))]);
        tr.span_end(track, "op", t(2), &[]);
        tr.instant(track, "tick", t(3), &[]);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        assert!(tr.inner.tracks.borrow().is_empty(), "no track interned");
    }

    #[test]
    fn enabled_tracer_buffers_events_in_order() {
        let tr = Tracer::new();
        tr.enable(16);
        let a = tr.track("rank 0");
        let b = tr.track("rank 1");
        assert_ne!(a, b);
        assert_eq!(tr.track("rank 0"), a, "tracks are interned by name");
        tr.span_begin(a, "get", t(1), &[("path", TraceValue::Str("rdma"))]);
        tr.span_end(a, "get", t(4), &[]);
        tr.instant(b, "arrive", t(2), &[]);
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tr = Tracer::new();
        tr.enable(2);
        let track = tr.track("x");
        for i in 0..5u64 {
            tr.instant(track, "e", t(i), &[]);
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 3);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let tr = Tracer::new();
        tr.enable(16);
        let track = tr.track("rank 0");
        tr.span_begin(
            track,
            "armci.get",
            t(1),
            &[
                ("bytes", TraceValue::U64(1024)),
                ("path", TraceValue::Str("rdma")),
                ("ok", TraceValue::Bool(true)),
                ("delta", TraceValue::I64(-3)),
                ("frac", TraceValue::F64(0.5)),
            ],
        );
        tr.span_end(track, "armci.get", t(3), &[]);
        tr.instant(track, "mark", t(2), &[]);
        let mut ct = ChromeTrace::new();
        ct.add_process(7, "sim", &tr);
        let out = ct.finish();
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.trim_end().ends_with("]}"));
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"thread_name\""));
        assert!(out.contains("\"ph\":\"B\""));
        assert!(out.contains("\"ph\":\"E\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"ts\":1.0"));
        assert!(out.contains("\"path\":\"rdma\""));
        assert!(out.contains("\"delta\":-3"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn chrome_export_escapes_hostile_names() {
        let tr = Tracer::new();
        tr.enable(16);
        // Track and process names with quotes, backslashes and control chars
        // must produce parseable JSON with the exact strings round-tripped.
        let track = tr.track("rank \"0\" \\ tab\there\nnewline\u{1}");
        tr.span_begin(
            track,
            "op \"quoted\" \\ end",
            t(1),
            &[("k\"ey\\", TraceValue::Str("v\"al\\ue\n"))],
        );
        tr.span_end(track, "op \"quoted\" \\ end", t(2), &[]);
        let mut ct = ChromeTrace::new();
        ct.add_process(1, "proc \"x\" \\ y\r\n", &tr);
        let out = ct.finish();
        let doc = crate::json::parse(&out).expect("export must stay valid JSON");
        let evs = doc.get("traceEvents").expect("traceEvents");
        let crate::json::JsonValue::Arr(evs) = evs else {
            panic!("traceEvents must be an array")
        };
        let names: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"op \"quoted\" \\ end"));
        let tracks: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(tracks, ["rank \"0\" \\ tab\there\nnewline\u{1}"]);
        let args: Vec<&crate::json::JsonValue> = evs
            .iter()
            .filter_map(|e| e.get("args")?.get("k\"ey\\"))
            .collect();
        assert_eq!(args.len(), 1);
        assert_eq!(args[0].as_str(), Some("v\"al\\ue\n"));
    }

    #[test]
    fn overflow_is_surfaced_in_export_metadata() {
        let tr = Tracer::new();
        tr.enable(2);
        let track = tr.track("x");
        for i in 0..7u64 {
            tr.instant(track, "e", t(i), &[]);
        }
        assert_eq!(tr.dropped(), 5);
        let mut ct = ChromeTrace::new();
        ct.add_process(1, "run", &tr);
        let out = ct.finish();
        let doc = crate::json::parse(&out).expect("valid JSON");
        let crate::json::JsonValue::Arr(evs) = doc.get("traceEvents").unwrap() else {
            panic!("array")
        };
        let dropped: Vec<f64> = evs
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("trace_dropped_events"))
            .filter_map(|e| e.get("args")?.get("dropped")?.as_f64())
            .collect();
        assert_eq!(dropped, [5.0]);
    }

    #[test]
    fn no_overflow_means_no_dropped_metadata() {
        let tr = Tracer::new();
        tr.enable(16);
        let track = tr.track("x");
        tr.instant(track, "e", t(1), &[]);
        let mut ct = ChromeTrace::new();
        ct.add_process(1, "run", &tr);
        assert!(!ct.finish().contains("trace_dropped_events"));
    }

    #[test]
    fn export_sorts_by_time_with_stable_seq_tiebreak() {
        let tr = Tracer::new();
        tr.enable(16);
        let track = tr.track("rank 0");
        // Three instants at the identical (time, track): export must keep
        // recording order, which the per-event seq pins down explicitly.
        tr.instant(track, "first", t(5), &[]);
        tr.instant(track, "second", t(5), &[]);
        tr.instant(track, "third", t(5), &[]);
        // Recorded last with an *earlier* timestamp (the health-instant
        // pattern: analysis after the run, stamps inside it) — must be
        // exported before the t=5 cluster, not trail at the end.
        tr.instant(track, "late-recorded", t(2), &[]);
        let mut ct = ChromeTrace::new();
        ct.add_process(1, "run", &tr);
        let out = ct.finish();
        let doc = crate::json::parse(&out).expect("valid JSON");
        let crate::json::JsonValue::Arr(evs) = doc.get("traceEvents").unwrap() else {
            panic!("array")
        };
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert_eq!(names, ["late-recorded", "first", "second", "third"]);
    }

    #[test]
    fn counter_tracks_export_values_per_window() {
        use crate::timeline::{SeriesKind, Timeline};
        let tl = Timeline::new();
        tl.enable(1_000_000, 64); // 1 µs windows
        let c = tl.series("net.msgs", SeriesKind::Counter);
        let g = tl.series("queue", SeriesKind::Gauge);
        tl.add(c, t(0), 3);
        tl.add(c, t(2), 7);
        tl.gauge(g, t(1), -4);
        let mut ct = ChromeTrace::new();
        ct.add_counters(9, &tl.snapshot());
        let out = ct.finish();
        let doc = crate::json::parse(&out).expect("counter export must be valid JSON");
        let crate::json::JsonValue::Arr(evs) = doc.get("traceEvents").unwrap() else {
            panic!("array")
        };
        assert_eq!(evs.len(), 3);
        for e in evs {
            assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("C"));
            assert_eq!(e.get("pid").and_then(|p| p.as_f64()), Some(9.0));
        }
        let get = |name: &str, ts: f64| -> f64 {
            evs.iter()
                .find(|e| {
                    e.get("name").and_then(|n| n.as_str()) == Some(name)
                        && e.get("ts").and_then(|v| v.as_f64()) == Some(ts)
                })
                .and_then(|e| e.get("args")?.get("value")?.as_f64())
                .unwrap()
        };
        assert_eq!(get("net.msgs", 0.0), 3.0);
        assert_eq!(get("net.msgs", 2.0), 7.0);
        assert_eq!(get("queue", 1.0), -4.0);
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let tr = Tracer::new();
            tr.enable(8);
            let track = tr.track("rank 0");
            tr.span_begin(track, "op", t(1), &[("n", TraceValue::U64(3))]);
            tr.span_end(track, "op", t(2), &[]);
            let mut ct = ChromeTrace::new();
            ct.add_process(1, "run", &tr);
            ct.finish()
        };
        assert_eq!(build(), build());
    }
}
