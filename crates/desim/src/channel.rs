//! Unbounded FIFO channels between simulated tasks.
//!
//! Sends are immediate (they consume no virtual time — model link/processing
//! delay explicitly before sending, or use the network layer); receives block
//! the awaiting task until a message is available. Multiple receivers are
//! allowed and are served in FIFO wake order, which keeps schedules
//! deterministic.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::waker_set::WakerSet;

struct Inner<T> {
    queue: VecDeque<T>,
    wakers: WakerSet,
    senders: usize,
    closed: bool,
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut inner = self.inner.borrow_mut();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.closed = true;
                inner.wakers.take_all()
            } else {
                Vec::new()
            }
        };
        for w in wakers {
            w.wake();
        }
    }
}

/// Create an unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(Inner {
        queue: VecDeque::new(),
        wakers: WakerSet::new(),
        senders: 1,
        closed: false,
    }));
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message, waking one waiting receiver.
    pub fn send(&self, value: T) {
        let waker = {
            let mut inner = self.inner.borrow_mut();
            inner.queue.push_back(value);
            inner.wakers.take_first()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Number of queued, unreceived messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive the next message, waiting if none is queued. Returns `None`
    /// once all senders are dropped and the queue is drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv {
            rx: self,
            slot: None,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
    slot: Option<u64>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let this = self.get_mut();
        let mut inner = this.rx.inner.borrow_mut();
        if let Some(v) = inner.queue.pop_front() {
            inner.wakers.remove(&this.slot);
            // Another message may remain for another waiting receiver.
            if !inner.queue.is_empty() {
                if let Some(w) = inner.wakers.take_first() {
                    w.wake();
                }
            }
            return Poll::Ready(Some(v));
        }
        if inner.closed {
            inner.wakers.remove(&this.slot);
            return Poll::Ready(None);
        }
        inner.wakers.register(&mut this.slot, cx.waker());
        Poll::Pending
    }
}

impl<T> Drop for Recv<'_, T> {
    fn drop(&mut self) {
        let mut inner = self.rx.inner.borrow_mut();
        inner.wakers.remove(&self.slot);
        // If messages remain and we were about to consume one, hand the
        // wake-up to the next waiting receiver.
        if !inner.queue.is_empty() {
            if let Some(w) = inner.wakers.take_first() {
                w.wake();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};

    #[test]
    fn send_then_recv() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send(1);
        tx.send(2);
        let h = sim.spawn(async move { (rx.recv().await, rx.recv().await) });
        sim.run();
        assert_eq!(h.try_result(), Some((Some(1), Some(2))));
    }

    #[test]
    fn recv_blocks_until_send() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let v = rx.recv().await.unwrap();
            (v, s.now())
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_us(4)).await;
            tx.send(9);
        });
        sim.run();
        let (v, t) = h.try_result().unwrap();
        assert_eq!(v, 9);
        assert_eq!(t.as_us(), 4.0);
    }

    #[test]
    fn closed_channel_returns_none() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send(1);
        drop(tx);
        let h = sim.spawn(async move { (rx.recv().await, rx.recv().await) });
        sim.run();
        assert_eq!(h.try_result(), Some((Some(1), None)));
    }

    #[test]
    fn drop_of_last_sender_wakes_waiters() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let h = sim.spawn(async move { rx.recv().await });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
            drop(tx);
        });
        sim.run();
        assert_eq!(h.try_result(), Some(None));
    }

    #[test]
    fn clone_sender_keeps_channel_open() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(3);
        let h = sim.spawn(async move { rx.recv().await });
        sim.run();
        assert_eq!(h.try_result(), Some(Some(3)));
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, rx) = channel::<u32>();
        assert!(rx.is_empty());
        tx.send(7);
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.try_recv(), Some(7));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn multiple_receivers_fifo() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let rx2 = rx.clone();
        let h1 = sim.spawn(async move { rx.recv().await });
        let h2 = sim.spawn(async move { rx2.recv().await });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
            tx.send(10);
            tx.send(20);
        });
        sim.run();
        // First-registered receiver gets the first message.
        assert_eq!(h1.try_result(), Some(Some(10)));
        assert_eq!(h2.try_result(), Some(Some(20)));
    }
}
