//! Regression tests for waker hygiene: racing/dropping futures against
//! simulation primitives must not leak wakers or duplicate timers.
//!
//! The original implementation pushed a waker on every poll and never
//! removed it; under `race()`-heavy loops (the progress engine) that caused
//! quadratic wake amplification — millions of stale timers and an event
//! loop stuck at one virtual instant. These tests pin the fix.

use desim::futures::race;
use desim::sync::{Barrier, Notify, SimMutex};
use desim::{Completion, Sim, SimDuration};
use std::cell::Cell;
use std::rc::Rc;

#[test]
fn racing_completion_against_notify_is_linear() {
    // A progress-wait style loop: race(done, notify) thousands of times.
    // With leaking wakers this took quadratic events; it must stay linear.
    let sim = Sim::new();
    let done: Completion<()> = Completion::new();
    let notify = Notify::new();
    let iters = 2000u64;

    {
        let notify = notify.clone();
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..iters {
                s.sleep(SimDuration::from_ns(100)).await;
                notify.notify_all();
            }
        });
    }
    {
        let done2 = done.clone();
        let notify = notify.clone();
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                if done2.peek().is_some() {
                    break;
                }
                match race(done2.wait(), notify.wait()).await {
                    desim::Either::Left(()) => break,
                    desim::Either::Right(()) => {}
                }
                let _ = &s;
            }
        });
    }
    {
        let done2 = done.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(500)).await;
            done2.complete(());
        });
    }
    sim.run();
    let events = sim.events_processed();
    // Linear bound with generous slack: ~6 events per notify round.
    assert!(
        events < iters * 20,
        "event blow-up: {events} events for {iters} rounds"
    );
}

#[test]
fn repeated_sleep_registers_one_timer_each() {
    // A task woken spuriously while sleeping must not duplicate its timer.
    let sim = Sim::new();
    let notify = Notify::new();
    {
        // Spammer: wakes the sleeper continuously via notify (stale-waker
        // style wakeups are simulated by racing).
        let notify = notify.clone();
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..1000 {
                s.sleep(SimDuration::from_ns(10)).await;
                notify.notify_all();
            }
        });
    }
    let s = sim.clone();
    let woke = Rc::new(Cell::new(false));
    let woke2 = Rc::clone(&woke);
    sim.spawn(async move {
        // Race a long sleep against the notify storm; the sleep future gets
        // re-polled ~1000 times.
        let mut storms = 0;
        let sleep = s.sleep(SimDuration::from_us(100));
        futures_pin(sleep, &mut storms, &notify).await;
        woke2.set(true);
    });
    sim.run();
    assert!(woke.get());
    assert!(
        sim.events_processed() < 50_000,
        "timer duplication suspected: {} events",
        sim.events_processed()
    );
}

/// Poll a sleep future to completion while being woken by a notify storm.
async fn futures_pin(sleep: desim::kernel::Sleep, storms: &mut u32, notify: &Notify) {
    let mut sleep = Box::pin(sleep);
    loop {
        match race(sleep.as_mut(), notify.wait()).await {
            desim::Either::Left(()) => return,
            desim::Either::Right(()) => *storms += 1,
        }
    }
}

#[test]
fn dropped_mutex_waiter_does_not_deadlock() {
    // A lock() future dropped while queued must surrender its ticket.
    let sim = Sim::new();
    let m = SimMutex::new();
    let progressed = Rc::new(Cell::new(false));
    {
        let m = m.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let _g = m.lock().await;
            s.sleep(SimDuration::from_us(10)).await;
        });
    }
    {
        // This waiter gives up (races the lock against a short sleep).
        let m = m.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
            match race(m.lock(), s.sleep(SimDuration::from_us(2))).await {
                desim::Either::Left(_g) => {}
                desim::Either::Right(()) => {} // cancelled while queued
            }
        });
    }
    {
        let m = m.clone();
        let s = sim.clone();
        let progressed = Rc::clone(&progressed);
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(5)).await;
            let _g = m.lock().await; // must still be obtainable
            progressed.set(true);
        });
    }
    sim.run();
    assert!(progressed.get(), "mutex queue wedged by cancelled waiter");
}

#[test]
fn dropped_barrier_and_channel_waiters_clean_up() {
    let sim = Sim::new();
    // Barrier: a waiter that gives up must not satisfy the barrier.
    let b = Barrier::new(2);
    let fired = Rc::new(Cell::new(false));
    {
        let b = b.clone();
        let s = sim.clone();
        sim.spawn(async move {
            match race(b.wait(), s.sleep(SimDuration::from_us(1))).await {
                desim::Either::Left(_) => panic!("barrier cannot complete alone"),
                desim::Either::Right(()) => {}
            }
        });
    }
    // Channel: dropped Recv must hand queued messages to the next receiver.
    let (tx, rx) = desim::channel::channel::<u32>();
    {
        let rx2 = rx.clone();
        let s = sim.clone();
        sim.spawn(async move {
            // Give up on the first recv quickly.
            match race(rx2.recv(), s.sleep(SimDuration::from_ns(100))).await {
                desim::Either::Left(_) => {}
                desim::Either::Right(()) => {}
            }
        });
    }
    {
        let fired = Rc::clone(&fired);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(2)).await;
            tx.send(5);
            let v = rx.recv().await;
            assert_eq!(v, Some(5));
            fired.set(true);
        });
    }
    sim.run();
    assert!(fired.get());
}

#[test]
fn long_progress_loop_event_count_is_proportional() {
    // End-to-end guard: a rank-like loop of sleep+notify churn for 100k
    // virtual microseconds stays event-linear.
    let sim = Sim::new();
    let s = sim.clone();
    let n = Notify::new();
    let n2 = n.clone();
    sim.spawn(async move {
        for _ in 0..10_000 {
            s.sleep(SimDuration::from_ns(500)).await;
            n2.notify_all();
        }
    });
    let s2 = sim.clone();
    sim.spawn(async move {
        let deadline = desim::SimTime::ZERO + SimDuration::from_ms(5);
        while s2.now() < deadline {
            match race(n.wait(), s2.sleep(SimDuration::from_us(1))).await {
                desim::Either::Left(()) | desim::Either::Right(()) => {}
            }
        }
    });
    sim.run();
    assert!(
        sim.events_processed() < 400_000,
        "{} events",
        sim.events_processed()
    );
}
