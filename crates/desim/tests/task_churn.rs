//! Kernel task-slab behavior under mass spawn/retire churn.
//!
//! The million-rank scale work leans on one kernel property: spawning and
//! retiring huge numbers of short-lived tasks must recycle task slots (ids,
//! hooks, prebuilt wakers) instead of growing the task table without bound.
//! These tests drive ~1M short-lived tasks through the executor in waves and
//! pin slab growth, id recycling and live-flag safety.

use desim::{Sim, SimDuration};
use std::cell::Cell;
use std::rc::Rc;

/// ~1M short-lived tasks in bounded waves: the slab must plateau at the
/// widest wave, never at the cumulative task count.
#[test]
fn million_task_churn_bounds_slab_growth() {
    const WAVE: usize = 4096;
    const WAVES: usize = 256; // 4096 * 256 = 1,048,576 tasks total
    let sim = Sim::new();
    let completed = Rc::new(Cell::new(0u64));
    for wave in 0..WAVES {
        for i in 0..WAVE {
            let s = sim.clone();
            let completed = Rc::clone(&completed);
            sim.spawn(async move {
                // A short sleep forces a real park/wake cycle (timer insert,
                // waker clone, re-poll) rather than a single synchronous poll.
                s.sleep(SimDuration::from_ns(1 + (i % 7) as u64)).await;
                completed.set(completed.get() + 1);
            });
        }
        // Retire the whole wave before the next spawns: every slot goes
        // through complete -> free-list -> reuse.
        sim.run();
        assert_eq!(sim.pending_tasks(), 0, "wave {wave} left tasks live");
        assert!(
            sim.task_slots() <= WAVE,
            "slab grew past the wave width: {} slots after wave {wave}",
            sim.task_slots()
        );
    }
    assert_eq!(completed.get(), (WAVE * WAVES) as u64);
    // The slab high-water mark equals one wave: 1M tasks, 4096 slots.
    assert_eq!(sim.task_slots(), WAVE);
}

/// Sequential churn reuses a single slot and hands out the same task id.
#[test]
fn sequential_churn_recycles_one_slot() {
    let sim = Sim::new();
    let first = sim.spawn(async {}).task_id();
    sim.run();
    for _ in 0..10_000 {
        let h = sim.spawn(async {});
        sim.run();
        assert_eq!(h.task_id(), first, "slot not recycled");
        assert!(h.is_done());
    }
    assert_eq!(sim.task_slots(), 1);
}

/// Interleaved spawn-from-within-task churn: tasks that spawn successors
/// while the executor is mid-drain still recycle slots correctly.
#[test]
fn chained_respawn_churn_stays_bounded() {
    const CHAIN: u64 = 100_000;
    let sim = Sim::new();
    let hops = Rc::new(Cell::new(0u64));
    fn hop(sim: Sim, hops: Rc<Cell<u64>>) {
        if hops.get() >= CHAIN {
            return;
        }
        hops.set(hops.get() + 1);
        let s = sim.clone();
        sim.clone().spawn(async move {
            s.sleep(SimDuration::from_ns(1)).await;
            hop(s.clone(), hops);
        });
    }
    hop(sim.clone(), Rc::clone(&hops));
    sim.run();
    assert_eq!(hops.get(), CHAIN);
    // At most the parent and its successor coexist.
    assert!(
        sim.task_slots() <= 2,
        "chained respawn leaked slots: {}",
        sim.task_slots()
    );
}

/// Live-flag safety across shutdown: slots reaped while their futures are
/// parked must come back clean — a respawn on the recycled table behaves
/// exactly like a fresh kernel (ids from 0, no stale wakes, no ghost polls).
#[test]
fn shutdown_then_mass_respawn_is_clean() {
    let sim = Sim::new();
    // Park a batch of daemons (they never complete on their own).
    for _ in 0..512 {
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.sleep(SimDuration::from_secs(1)).await;
            }
        });
    }
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(1));
    assert_eq!(sim.pending_tasks(), 512);
    sim.shutdown();
    assert_eq!(sim.pending_tasks(), 0);
    assert_eq!(sim.task_slots(), 512, "shutdown must keep slots for reuse");
    // Respawn over the recycled slots: ids restart at 0 in spawn order.
    let events_before = sim.events_processed();
    let done = Rc::new(Cell::new(0u32));
    let mut ids = Vec::new();
    for _ in 0..512 {
        let done = Rc::clone(&done);
        ids.push(sim.spawn(async move { done.set(done.get() + 1) }).task_id());
    }
    sim.run();
    assert_eq!(done.get(), 512);
    assert_eq!(sim.task_slots(), 512, "respawn must not grow the slab");
    let mut sorted = ids.clone();
    sorted.sort_by_key(|t| format!("{t:?}"));
    sorted.dedup();
    assert_eq!(sorted.len(), 512, "recycled ids must stay distinct");
    // Exactly one poll per respawned task: no stale wakes inflate the count.
    assert_eq!(sim.events_processed() - events_before, 512);
}
