//! End-to-end tests of the tagged allocation profiler with [`MemProf`]
//! actually installed as the global allocator (which is why this is its own
//! integration-test binary — `#[global_allocator]` is process-wide).
//!
//! The unit tests inside `desim::memprof` exercise the registry, scopes and
//! side table directly; here real allocations flow through the tracking
//! wrapper. Every test uses the thread-local [`mark`]/[`since`] delta API,
//! so the tests stay independent even though the harness runs them
//! concurrently (each test thread owns its counters).

use desim::memprof::{self, MemProf, MemScope, MemTag};

#[global_allocator]
static ALLOC: MemProf = MemProf;

#[test]
fn scoped_allocations_attribute_nested_and_restore() {
    memprof::enable();
    let m = memprof::mark();
    let outer = MemScope::enter("it.outer");
    let held: Vec<u8> = vec![0; 4096];
    {
        let _inner = MemScope::enter("it.inner");
        let tmp: Vec<u8> = vec![0; 1024];
        drop(tmp);
    }
    drop(outer);
    let snap = memprof::since(&m);
    let o = snap.get("it.outer").expect("outer tag recorded");
    assert_eq!(o.live_bytes, 4096, "held buffer still live under it.outer");
    assert_eq!(o.allocs, 1);
    assert_eq!(o.frees, 0);
    let i = snap.get("it.inner").expect("inner tag recorded");
    assert_eq!(i.live_bytes, 0, "inner buffer allocated and freed");
    assert_eq!(i.peak_bytes, 1024);
    assert_eq!(i.allocs, 1);
    assert_eq!(i.frees, 1);

    // The free of a block is charged to the tag that allocated it, even
    // when it happens outside any scope.
    drop(held);
    let snap = memprof::since(&m);
    let o = snap.get("it.outer").expect("outer tag still present");
    assert_eq!(o.live_bytes, 0);
    assert_eq!(o.peak_bytes, 4096);
    assert_eq!(o.frees, 1);
}

#[test]
fn vec_growth_reallocs_keep_the_original_owner() {
    memprof::enable();
    let m = memprof::mark();
    let mut v: Vec<u64>;
    {
        let _owner = MemScope::enter("it.grow.owner");
        v = Vec::with_capacity(4);
    }
    {
        // Growth happens here, under a different tag — the reallocs must
        // stay charged to the block's original owner.
        let _pusher = MemScope::enter("it.grow.pusher");
        for i in 0..1024u64 {
            v.push(i);
        }
    }
    assert_eq!(v.capacity(), 1024);
    let snap = memprof::since(&m);
    let o = snap.get("it.grow.owner").expect("owner tag recorded");
    assert_eq!(o.live_bytes, 1024 * 8);
    assert_eq!(o.allocs, 1);
    assert!(o.reallocs >= 1, "doubling growth goes through realloc");
    assert!(
        snap.get("it.grow.pusher").is_none_or(|p| p.allocs == 0),
        "the pushing scope allocated nothing of its own"
    );
}

#[test]
fn nested_growth_and_fresh_allocations_attribute_independently() {
    memprof::enable();
    let m = memprof::mark();
    let mut spine: Vec<Vec<u8>>;
    {
        let _s = MemScope::enter("it.nest.spine");
        spine = Vec::with_capacity(1);
    }
    {
        // Each push allocates a fresh leaf (charged here) and occasionally
        // reallocs the spine in the middle of that operation (charged to
        // the spine's owner): allocation inside an allocation.
        let _l = MemScope::enter("it.nest.leaves");
        for _ in 0..64 {
            spine.push(vec![1u8; 128]);
        }
    }
    let snap = memprof::since(&m);
    let leaves = snap.get("it.nest.leaves").expect("leaf tag recorded");
    assert_eq!(leaves.allocs, 64);
    assert_eq!(leaves.live_bytes, 64 * 128);
    let s = snap.get("it.nest.spine").expect("spine tag recorded");
    let elem = std::mem::size_of::<Vec<u8>>() as i64;
    assert_eq!(s.live_bytes, spine.capacity() as i64 * elem);
    assert!(s.reallocs >= 1);
}

#[test]
fn scope_default_defers_to_tagged_callers() {
    static SERVICE: MemTag = MemTag::new("it.svc");
    memprof::enable();
    let m = memprof::mark();
    {
        // A tagged caller wins: the service's default claim is a no-op.
        let _caller = MemScope::enter("it.svc.caller");
        let _d = memprof::scope_default(&SERVICE);
        let _buf: Vec<u8> = vec![0; 256];
    }
    {
        // No outer scope: the service claims its own allocations.
        let _d = memprof::scope_default(&SERVICE);
        let _buf: Vec<u8> = vec![0; 512];
    }
    let snap = memprof::since(&m);
    let caller = snap.get("it.svc.caller").expect("caller tag recorded");
    assert_eq!(caller.peak_bytes, 256);
    assert_eq!(caller.allocs, 1);
    let svc = snap.get("it.svc").expect("service tag recorded");
    assert_eq!(svc.peak_bytes, 512);
    assert_eq!(svc.allocs, 1);
}

#[test]
fn global_snapshot_serializes_and_tracks_this_binary() {
    memprof::enable();
    {
        let _g = MemScope::enter("it.json");
        let _v: Vec<u8> = vec![0; 2048];
    }
    let snap = memprof::global_snapshot();
    assert!(snap.get("it.json").is_some_and(|t| t.allocs >= 1));
    assert!(memprof::total_allocs() > 0);
    let j = snap.to_json();
    assert!(j.starts_with("{\"schema\":\"memprof-v1\""));
    assert!(desim::json::parse(&j).is_ok());
}
