//! Cross-validation: the closed-form LogGP models of `torus5d::cost`
//! (the paper's Eqs. 7–9) against the event-level simulation. The two are
//! independent implementations of the same cost structure; agreement here
//! means the figures produced by the simulator are the figures the models
//! predict.

use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};
use std::cell::Cell;
use std::rc::Rc;

fn machine(nprocs: usize) -> (Sim, Machine) {
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(nprocs).procs_per_node(1));
    (sim, m)
}

/// |a - b| <= tol microseconds.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[test]
fn eq7_rdma_get_model_matches_simulation() {
    for bytes in [16usize, 256, 4096, 65536, 1 << 20] {
        let (sim, m) = machine(2);
        let a = m.rank(0);
        let b = m.rank(1);
        let remote = b.alloc(bytes);
        let local = a.alloc(bytes);
        let p = m.params().clone();
        let s = sim.clone();
        let out = Rc::new(Cell::new(0.0));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let t0 = s.now();
            a.rdma_get(1, local, remote, bytes).await.wait().await;
            s.sleep(p.o_recv).await;
            out2.set((s.now() - t0).as_us());
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        sim.shutdown();
        let hops = m.topology().hops(0, 1);
        let model = m.params().model_rdma_get(hops, bytes).as_us();
        assert!(
            close(out.get(), model, 0.01),
            "bytes={bytes}: sim {} vs Eq.7 {}",
            out.get(),
            model
        );
    }
}

#[test]
fn eq8_fallback_model_matches_simulation_with_prompt_target() {
    // Eq. 8 assumes the target services promptly; give it an async thread
    // with zero wake-up overhead for an apples-to-apples check, and allow
    // the wake-up granularity as tolerance otherwise.
    for bytes in [16usize, 1024, 65536] {
        let (sim, m) = machine(2);
        let a = m.rank(0);
        let b = m.rank(1);
        let remote = b.alloc(bytes);
        let local = a.alloc(bytes);
        let _at = b.start_progress_thread(0);
        let p = m.params().clone();
        let s = sim.clone();
        let out = Rc::new(Cell::new(0.0));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let t0 = s.now();
            a.sw_get(1, local, remote, bytes).await.wait().await;
            s.sleep(p.o_recv).await;
            out2.set((s.now() - t0).as_us());
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        sim.shutdown();
        let hops = m.topology().hops(0, 1);
        let model = m.params().model_fallback_get(hops, bytes).as_us();
        // Tolerance: AT wake-up + AM header wire time.
        let tol = m.params().at_wakeup.as_us()
            + m.params().wire_time(m.params().am_header_bytes).as_us()
            + 0.05;
        assert!(
            close(out.get(), model, tol),
            "bytes={bytes}: sim {} vs Eq.8 {} (tol {tol})",
            out.get(),
            model
        );
    }
}

#[test]
fn eq9_strided_model_matches_chunked_rdma_gets() {
    // Post n chunk gets back-to-back and wait for all: the paper's Eq. 9
    // o·(m/l0) + L + m·G structure (plus the per-chunk NIC engine time and
    // completion processing the model folds into o).
    let total = 1 << 18;
    for l0 in [4096usize, 16384, 65536] {
        let chunks = total / l0;
        let (sim, m) = machine(2);
        let a = m.rank(0);
        let b = m.rank(1);
        let remote = b.alloc(total * 2);
        let local = a.alloc(total);
        let p = m.params().clone();
        let s = sim.clone();
        let out = Rc::new(Cell::new(0.0));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let t0 = s.now();
            let mut dones = Vec::new();
            for i in 0..chunks {
                dones.push(a.rdma_get(1, local + i * l0, remote + i * l0 * 2, l0).await);
            }
            for d in dones {
                d.wait().await;
            }
            s.sleep(p.o_recv).await;
            out2.set((s.now() - t0).as_us());
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        sim.shutdown();
        let hops = m.topology().hops(0, 1);
        let p = m.params();
        // Eq. 9 adds the posting overheads and the wire time (no overlap);
        // the event simulation pipelines them. The measured time must land
        // between the overlapped lower bound max(o·chunks, m·G) and Eq. 9's
        // upper bound, both plus the fixed round-trip terms.
        let fixed = (p.o_send + p.rdma_engine).as_us() // first post before overlap
            + 2.0 * p.oneway_header(hops).as_us()
            + p.o_recv.as_us()
            + 1.0;
        let posting = (p.o_send + p.rdma_engine).as_us() * chunks as f64;
        let wire = p.wire_time(total).as_us();
        let lower = posting.max(wire);
        let upper = p.model_strided(hops, l0, chunks).as_us()
            + p.oneway_header(hops).as_us()
            + p.o_recv.as_us()
            + 1.0;
        assert!(
            out.get() >= lower && out.get() <= upper + fixed,
            "l0={l0}: sim {} outside [{lower}, {}]",
            out.get(),
            upper + fixed
        );
    }
}

#[test]
fn hop_latency_in_simulation_equals_parameter() {
    // Measure two distances through the full sim and recover 35 ns/hop.
    let (sim, m) = machine(64);
    let far = (1..64)
        .max_by_key(|&r| m.topology().hops(0, r))
        .expect("ranks");
    let near = (1..64)
        .find(|&r| m.topology().hops(0, r) == 1)
        .expect("adjacent");
    let h_far = m.topology().hops(0, far);
    let lat = |target: usize| {
        let (sim, m) = machine(64);
        let a = m.rank(0);
        let b = m.rank(target);
        let remote = b.alloc(16);
        let local = a.alloc(16);
        let s = sim.clone();
        let out = Rc::new(Cell::new(0.0));
        let out2 = Rc::clone(&out);
        sim.spawn(async move {
            let t0 = s.now();
            a.rdma_get(target, local, remote, 16).await.wait().await;
            out2.set((s.now() - t0).as_ns());
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        sim.shutdown();
        out.get()
    };
    let per_hop = (lat(far) - lat(near)) / ((h_far - 1) as f64 * 2.0);
    assert!(
        (per_hop - 35.0).abs() < 0.5,
        "per-hop {per_hop} ns != 35 ns"
    );
    let _ = sim;
}
