//! Tests of the packed (typed-datatype) strided paths, strided accumulate,
//! and validation of the paper's space/time models (Eqs. 1–6) against the
//! implementation's accounting.

use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};

fn machine(nprocs: usize) -> (Sim, Machine) {
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(nprocs).procs_per_node(1));
    (sim, m)
}

fn run(sim: &Sim) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    sim.shutdown();
}

#[test]
fn packed_get_gathers_and_scatters() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    // Remote layout: 4 chunks of 16 bytes at stride 100.
    let rbase = b.alloc(400);
    for i in 0..4 {
        b.write_bytes(rbase + i * 100, &[(i + 1) as u8; 16]);
    }
    let lbase = a.alloc(64);
    let _at = b.start_progress_thread(0);
    let a2 = a.clone();
    sim.spawn(async move {
        let chunks: Vec<(usize, usize)> = (0..4).map(|i| (rbase + i * 100, 16)).collect();
        let locals: Vec<(usize, usize)> = (0..4).map(|i| (lbase + i * 16, 16)).collect();
        let done = a2.packed_get(1, chunks, locals).await;
        done.wait().await;
    });
    run(&sim);
    for i in 0..4 {
        assert_eq!(a.read_bytes(lbase + i * 16, 16), vec![(i + 1) as u8; 16]);
    }
}

#[test]
fn packed_get_mismatched_chunk_boundaries() {
    // Gather 3 remote chunks into 2 local chunks (same total).
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let rbase = b.alloc(300);
    b.write_bytes(rbase, &[1; 10]);
    b.write_bytes(rbase + 100, &[2; 10]);
    b.write_bytes(rbase + 200, &[3; 10]);
    let lbase = a.alloc(30);
    let _at = b.start_progress_thread(0);
    let a2 = a.clone();
    sim.spawn(async move {
        let done = a2
            .packed_get(
                1,
                vec![(rbase, 10), (rbase + 100, 10), (rbase + 200, 10)],
                vec![(lbase, 15), (lbase + 15, 15)],
            )
            .await;
        done.wait().await;
    });
    run(&sim);
    let got = a.read_bytes(lbase, 30);
    let mut expect = vec![1u8; 10];
    expect.extend(vec![2u8; 10]);
    expect.extend(vec![3u8; 10]);
    assert_eq!(got, expect);
}

#[test]
fn packed_put_scatters_at_target() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let lbase = a.alloc(48);
    a.write_bytes(lbase, &[9u8; 48]);
    let rbase = b.alloc(500);
    let _at = b.start_progress_thread(0);
    let a2 = a.clone();
    sim.spawn(async move {
        let h = a2
            .packed_put(
                1,
                vec![(lbase, 48)],
                vec![(rbase, 16), (rbase + 200, 16), (rbase + 400, 16)],
            )
            .await;
        h.remote.wait().await;
    });
    run(&sim);
    for off in [rbase, rbase + 200, rbase + 400] {
        assert_eq!(b.read_bytes(off, 16), vec![9u8; 16]);
    }
    // Gaps untouched.
    assert_eq!(b.read_bytes(rbase + 16, 4), vec![0u8; 4]);
}

#[test]
fn acc_strided_scatter_accumulates() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let lbase = a.alloc(4 * 8 * 2);
    a.write_f64s(lbase, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let rbase = b.alloc(1000);
    b.write_f64s(rbase, &[10.0; 4]);
    b.write_f64s(rbase + 500, &[20.0; 4]);
    let _at = b.start_progress_thread(0);
    let a2 = a.clone();
    sim.spawn(async move {
        let h = a2
            .acc_strided_f64(
                1,
                vec![(lbase, 32), (lbase + 32, 32)],
                vec![(rbase, 32), (rbase + 500, 32)],
                2.0,
            )
            .await;
        h.remote.wait().await;
    });
    run(&sim);
    assert_eq!(b.read_f64s(rbase, 4), vec![12.0, 14.0, 16.0, 18.0]);
    assert_eq!(b.read_f64s(rbase + 500, 4), vec![30.0, 32.0, 34.0, 36.0]);
}

#[test]
fn packed_transfer_charges_pack_cost() {
    // The packed path costs pack + unpack CPU copies; a zero-copy transfer
    // of the same bytes is strictly faster end-to-end.
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let total = 256 * 1024;
    let rbase = b.alloc(total);
    let lbase = a.alloc(total);
    let _at = b.start_progress_thread(0);
    let s = sim.clone();
    let a2 = a.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        a2.rdma_get(1, lbase, rbase, total).await.wait().await;
        let zc = s.now() - t0;
        let t1 = s.now();
        a2.packed_get(1, vec![(rbase, total)], vec![(lbase, total)])
            .await
            .wait()
            .await;
        let packed = s.now() - t1;
        (zc, packed)
    });
    run(&sim);
    let (zc, packed) = h.try_result().unwrap();
    assert!(packed > zc, "packed {packed} must exceed zero-copy {zc}");
    // The gap covers at least the pack+unpack copies at the modelled rate.
    let copies = SimDuration::from_ps(2 * total as u64 * m.params().pack_byte_time_ps);
    assert!(
        packed - zc >= copies - SimDuration::from_us(5),
        "gap {} < copy cost {copies}",
        packed - zc
    );
}

#[test]
fn space_model_equations_match_accounting() {
    // Walk a rank through creating rho contexts, zeta endpoints, tau local
    // buffers and sigma structures; Eqs. 1-6 must predict the accounting.
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(8).contexts(2));
    let r0 = m.rank(0);
    let params = m.params().clone();
    let (rho, zeta, tau, sigma) = (2usize, 5usize, 3usize, 2usize);
    let r0b = r0.clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        r0b.create_contexts().await;
        let t_contexts = s.now() - t0;
        let t0 = s.now();
        for target in 1..=zeta {
            for ctx in 0..rho {
                r0b.ensure_endpoint(target, ctx).await;
            }
        }
        let t_endpoints = s.now() - t0;
        let t0 = s.now();
        for i in 0..(tau + sigma) {
            let off = r0b.alloc(4096);
            let _ = i;
            r0b.register_region(off, 4096).await.expect("register");
        }
        let t_regions = s.now() - t0;
        (t_contexts, t_endpoints, t_regions)
    });
    sim.run();
    let (t_contexts, t_endpoints, t_regions) = h.try_result().unwrap();
    let snap = m.space(0);
    // Eq. 1 / Eq. 2.
    assert_eq!(snap.contexts, params.context_bytes * rho);
    assert_eq!(t_contexts, params.context_create * rho as u64);
    // Eq. 3 / Eq. 4.
    assert_eq!(snap.endpoints, zeta * params.endpoint_bytes * rho);
    assert_eq!(t_endpoints, params.endpoint_create * (zeta * rho) as u64);
    // Eq. 5 / Eq. 6 (region metadata part).
    assert_eq!(snap.regions, (tau + sigma) * params.memregion_bytes);
    assert_eq!(t_regions, params.memregion_create * (tau + sigma) as u64);
}

#[test]
fn context_lock_forces_alternation_between_two_advancers() {
    // Two tasks repeatedly advancing one context never run service code
    // concurrently: total serviced equals the queue length exactly once.
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let dst = r0.alloc(1 << 16);
    let src = r1.alloc(1 << 16);
    sim.spawn(async move {
        for _ in 0..8 {
            r1.sw_put(0, src, dst, 8192).await;
        }
    });
    let mut handles = Vec::new();
    for _ in 0..2 {
        let rk = m.rank(0);
        let s = sim.clone();
        handles.push(sim.spawn(async move {
            s.sleep(SimDuration::from_us(50)).await;
            rk.advance(0, usize::MAX).await
        }));
    }
    run(&sim);
    let a = handles[0].try_result().unwrap();
    let b = handles[1].try_result().unwrap();
    assert_eq!(a + b, 8, "every item serviced exactly once ({a}+{b})");
}
