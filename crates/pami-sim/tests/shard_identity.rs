//! Byte-identity of the conservative parallel shard mode: a mixed RMA/AMO
//! storm over a sharded machine must produce identical statistics, memory
//! images, fetch results, counters and virtual end time for **any** worker
//! count. The window mailbox defers cross-shard legs to their boundary pump
//! but re-inserts them under sequence numbers reserved at post time, so the
//! `(time, seq)` order — and therefore every output — never changes.

use std::cell::RefCell;
use std::rc::Rc;

use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig, RmwOp};

const PROCS: usize = 48;

struct StormOut {
    stats_json: String,
    messages: u64,
    bytes: u64,
    util: Vec<(torus5d::Link, SimDuration)>,
    fetched: Vec<i64>,
    counter_end: i64,
    cells: Vec<i64>,
    end_ps: u64,
    mail: (u64, u64),
}

/// Run the storm on a `workers`-shard machine: every rank fetch-adds a
/// shared counter twice, RDMA-puts into a scattered peer, RDMA-gets from
/// another, and software-puts into rank 0 (whose progress thread services
/// the AMO and sw queues). Legs cross shard boundaries constantly.
fn storm(workers: usize) -> StormOut {
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(PROCS)
            .procs_per_node(16)
            .contention(true)
            .workers(workers),
    );
    let owner = m.rank(0);
    let counter = owner.alloc(8);
    let _at = owner.start_progress_thread(0);
    let fetched: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));
    for r in 1..PROCS {
        let rk = m.rank(r);
        let fetched = Rc::clone(&fetched);
        sim.spawn(async move {
            let v = rk.rmw(0, counter, RmwOp::FetchAdd(1)).await.wait().await;
            fetched.borrow_mut().push(v);
            let mut dst = (r * 7 + 3) % PROCS;
            if dst == r {
                dst = (dst + 1) % PROCS;
            }
            rk.write_i64(0, (r * 1000 + 1) as i64);
            let h = rk.rdma_put(dst, 0, 64 + r * 16, 8).await;
            h.remote.wait().await;
            let mut src = (r * 11 + 5) % PROCS;
            if src == r {
                src = (src + 1) % PROCS;
            }
            rk.rdma_get(src, 8, 0, 8).await.wait().await;
            let h = rk.sw_put(0, 0, 1024 + r * 8, 8).await;
            h.remote.wait().await;
            let v = rk
                .rmw(0, counter, RmwOp::FetchAdd(r as i64))
                .await
                .wait()
                .await;
            fetched.borrow_mut().push(v);
        });
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(50));
    m.stop_progress_threads();
    let end_ps = sim.now().as_ps();
    let cells = (1..PROCS)
        .map(|r| {
            let mut dst = (r * 7 + 3) % PROCS;
            if dst == r {
                dst = (dst + 1) % PROCS;
            }
            m.rank(dst).read_i64(64 + r * 16)
        })
        .chain((1..PROCS).map(|r| owner.read_i64(1024 + r * 8)))
        .collect();
    let out = StormOut {
        stats_json: sim.stats().snapshot().to_json(),
        messages: m.net_messages(),
        bytes: m.net_bytes(),
        util: m.link_utilization(),
        fetched: fetched.borrow().clone(),
        counter_end: owner.read_i64(counter),
        cells,
        end_ps,
        mail: m.mail_counters(),
    };
    sim.shutdown();
    out
}

#[test]
fn storm_is_worker_count_invariant() {
    let base = storm(1);
    assert_eq!(base.mail, (0, 0), "serial machine must not build a mailbox");
    assert_eq!(base.fetched.len(), 2 * (PROCS - 1));
    let expect_counter: i64 = (PROCS - 1) as i64 + (1..PROCS as i64).sum::<i64>();
    assert_eq!(base.counter_end, expect_counter);
    for workers in [2, 3, 4] {
        let par = storm(workers);
        assert!(
            par.mail.0 > 0,
            "storm with {workers} shards never crossed a boundary"
        );
        assert_eq!(
            par.stats_json, base.stats_json,
            "stats diverged at workers={workers}"
        );
        assert_eq!(par.messages, base.messages);
        assert_eq!(par.bytes, base.bytes);
        assert_eq!(
            par.util, base.util,
            "link util diverged at workers={workers}"
        );
        assert_eq!(
            par.fetched, base.fetched,
            "AMO fetch order diverged at workers={workers}"
        );
        assert_eq!(par.counter_end, base.counter_end);
        assert_eq!(par.cells, base.cells);
        assert_eq!(par.end_ps, base.end_ps, "virtual time diverged");
    }
}

#[test]
fn shard_map_and_accessors() {
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(8).workers(4));
    assert_eq!(m.workers(), 4);
    assert_eq!(m.shard_of(0), 0);
    assert_eq!(m.shard_of(7), 3);
    let serial = Machine::new(Sim::new(), MachineConfig::new(8));
    assert_eq!(serial.workers(), 1);
    assert_eq!(serial.shard_of(7), 0);
    assert_eq!(serial.mail_counters(), (0, 0));
}

#[test]
fn faulty_machine_pins_to_serial_path() {
    // A non-empty fault plan disables the mailbox outright: retries and
    // give-up legs follow the serial scheduling rules.
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(8)
            .workers(4)
            .faults(desim::FaultPlan::new(3).corruption(0.01)),
    );
    assert_eq!(m.workers(), 4);
    assert_eq!(m.mail_counters(), (0, 0));
    assert_eq!(m.shard_of(7), 0, "faulty machine has no shard table");
}
