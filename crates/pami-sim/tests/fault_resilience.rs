//! Fault-injection acceptance scenarios: kill a link mid-run and check that
//! the run completes, traffic reroutes around the dead link once detection
//! fires, retries preserve per-pair ordering, and the retry/timeout/downtime
//! accounting reaches the metrics snapshot and the critical-path analyzer.

use desim::{analyze, FaultPlan, Sim, SimDuration, SimTime};
use pami_sim::{FailureMode, Machine, MachineConfig, RetryPolicy};
use torus5d::{routing, RouteTable, Topology};

fn us(n: u64) -> SimDuration {
    SimDuration::from_us(n)
}

fn at(n: u64) -> SimTime {
    SimTime::ZERO + us(n)
}

/// The dense link id of the first link on the node0→node1 route for a
/// 32-rank (2-node) partition — the link the fault plan kills.
fn first_internode_link(topo: &Topology) -> u32 {
    let rt = RouteTable::new(topo);
    let src = rt.coord_of(0);
    let dst = rt.coord_of(16);
    let first = routing::route(rt.shape(), src, dst)[0];
    rt.link_id(first).0
}

#[test]
fn killed_link_mid_run_reroutes_retries_and_preserves_ordering() {
    let topo = Topology::for_procs(32, 16);
    let dead = first_internode_link(&topo);
    // Link dies at 100µs, routing notices at 140µs, link heals at 500µs.
    let plan = FaultPlan::new(7)
        .route_update_delay(us(40))
        .link_down(dead, at(100), at(500));
    let policy = RetryPolicy {
        timeout: us(60),
        backoff: us(5),
        max_retries: 8,
        failure: FailureMode::FailFast,
    };
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(32)
            .procs_per_node(16)
            .contention(true)
            .faults(plan)
            .retry(policy),
    );
    m.enable_flight(1 << 16);
    assert!(m.faults_active());

    let a = m.rank(0);
    let b = m.rank(16);
    let src_pre = a.alloc(8);
    let src_a = a.alloc(8);
    let src_b = a.alloc(8);
    let dst_pre = b.alloc(8);
    let dst_a = b.alloc(8);
    let dst_b = b.alloc(8);
    a.write_i64(src_pre, 1);
    a.write_i64(src_a, 2);
    a.write_i64(src_b, 3);

    let fl = m.flight();
    let done_a = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));
    let done_b = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));

    // Put A: injected inside the detection gap (link physically down, routes
    // not yet updated) → dropped, retried after timeout + backoff.
    {
        let (a, sim, fl, done_a) = (a.clone(), sim.clone(), fl.clone(), done_a.clone());
        sim.clone().spawn(async move {
            // Sanity put before the fault window: the normal fast path.
            let h = a.rdma_put(16, src_pre, dst_pre, 8).await;
            h.remote.wait().await;
            assert!(sim.now() < at(100), "pre-fault put must land early");
            sim.sleep_until(at(102)).await;
            let op = fl.begin_op(sim.now(), 0, "armci.put");
            a.set_current_op(op);
            let h = a.rdma_put(16, src_a, dst_a, 8).await;
            a.set_current_op(None);
            h.remote.wait().await;
            done_a.set(sim.now());
            if let Some(op) = op {
                fl.end_op(op, sim.now());
            }
        });
    }
    // Put B: younger, injected after route detection — detours around the
    // dead link and lands while A is still waiting out its timeout.
    {
        let (a, sim, done_b) = (a.clone(), sim.clone(), done_b.clone());
        sim.clone().spawn(async move {
            sim.sleep_until(at(145)).await;
            let h = a.rdma_put(16, src_b, dst_b, 8).await;
            h.remote.wait().await;
            done_b.set(sim.now());
        });
    }
    sim.run();

    // The run completed and all three payloads landed.
    assert_eq!(b.read_i64(dst_pre), 1);
    assert_eq!(b.read_i64(dst_a), 2);
    assert_eq!(b.read_i64(dst_b), 3);

    // B rerouted: it completed promptly over the detour, well before the
    // link heals at 500µs and before A's retransmit.
    let (t_a, t_b) = (done_a.get(), done_b.get());
    assert!(t_b < at(200), "B should detour promptly, landed at {t_b}");
    // Ordering across retry: the retried older put may not pass the younger
    // put to the same target.
    assert!(t_a >= t_b, "retried A ({t_a}) overtook younger B ({t_b})");

    // Retry accounting reached the stats and the critical path.
    let stats = m.stats();
    assert!(stats.counter("pami.retries") >= 1, "no retries recorded");
    assert!(stats.counter("pami.timeouts") >= 1, "no timeouts recorded");
    m.flush_net_stats();
    assert!(stats.counter("fault.link_down_events") >= 1);
    assert!(stats.counter("fault.link_down_ps") > 0);
    assert!(stats.counter("fault.drops") >= 1);
    let cp = analyze(&fl, sim.now());
    assert!(
        cp.breakdown.retry > SimDuration::ZERO,
        "critical path must blame a retry segment: {:?}",
        cp.breakdown
    );
}

#[test]
fn batched_ams_survive_link_down_exactly_once_and_in_order() {
    let topo = Topology::for_procs(32, 16);
    let dead = first_internode_link(&topo);
    // Link dies before the AM storm and heals late; routing notices at
    // 140µs, so both coalesced wire messages are injected into the
    // detection gap, dropped, and retransmitted over the detour.
    let plan = FaultPlan::new(13)
        .route_update_delay(us(40))
        .link_down(dead, at(100), at(500));
    let policy = RetryPolicy {
        timeout: us(60),
        backoff: us(5),
        max_retries: 8,
        failure: FailureMode::FailFast,
    };
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(32)
            .procs_per_node(16)
            .contention(true)
            .am_batching(1 << 16, us(5))
            .faults(plan)
            .retry(policy),
    );
    m.enable_flight(1 << 16);
    // Handler logs each AM's (batch, idx) tag in execution order.
    let log: std::rc::Rc<std::cell::RefCell<Vec<(u8, u8)>>> = Default::default();
    {
        let log = log.clone();
        m.register_am(
            42,
            std::rc::Rc::new(move |_env, msg| {
                log.borrow_mut().push((msg.header[0], msg.header[1]));
            }),
        );
    }
    let a = m.rank(0);
    let b = m.rank(16);
    b.enable_async_progress(0);
    let fl = m.flight();
    {
        let (m, a, sim, fl) = (m.clone(), a.clone(), sim.clone(), fl.clone());
        sim.clone().spawn(async move {
            sim.sleep_until(at(102)).await;
            let op = fl.begin_op(sim.now(), 0, "am.storm");
            a.set_current_op(op);
            for i in 0..4u8 {
                a.send_am(16, 42, vec![0, i], Vec::new()).await;
            }
            m.am_flush_pair(0, 16); // batch 0: flushed inside the gap
            for i in 0..4u8 {
                a.send_am(16, 42, vec![1, i], Vec::new()).await;
            }
            m.am_flush_pair(0, 16); // batch 1: likewise
            a.set_current_op(None);
            if let Some(op) = op {
                fl.end_op(op, sim.now());
            }
        });
    }
    sim.run();

    // Exactly-once: each tagged AM executed once despite the retransmits.
    let got = log.borrow().clone();
    assert_eq!(got.len(), 8, "expected 8 AM executions, got {got:?}");
    // Each batch lands as one work item: its entries are contiguous and in
    // enqueue order, and pair-FIFO keeps batch 0 ahead of batch 1.
    assert_eq!(
        got,
        (0..2u8)
            .flat_map(|b| (0..4u8).map(move |i| (b, i)))
            .collect::<Vec<_>>(),
        "batched AMs lost contiguity or pair order across retransmits"
    );
    // The drops really happened and were blamed on the retry layer.
    let stats = m.stats();
    assert!(
        stats.counter("pami.retries") >= 2,
        "both batches must retry"
    );
    assert!(stats.counter("pami.timeouts") >= 2);
    assert_eq!(stats.counter("am.wire_msgs"), 2, "one wire message a batch");
    let cp = analyze(&fl, sim.now());
    assert!(
        cp.breakdown.retry > SimDuration::ZERO,
        "critical path must carry retry blame: {:?}",
        cp.breakdown
    );
}

#[test]
fn hung_node_stalls_progress_until_recovery() {
    let topo = Topology::for_procs(32, 16);
    let _ = topo; // 2 nodes; rank 16 lives on node 1.
    let plan = FaultPlan::new(11).node_hang(1, at(50), at(250));
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(32)
            .procs_per_node(16)
            .contention(true)
            .faults(plan),
    );
    let a = m.rank(0);
    let b = m.rank(16);
    let src = a.alloc(8);
    let dst = b.alloc(8);
    a.write_i64(src, 99);
    let landed = std::rc::Rc::new(std::cell::Cell::new(SimTime::ZERO));
    {
        let (sim, b, landed) = (sim.clone(), b.clone(), landed.clone());
        sim.clone().spawn(async move {
            sim.sleep_until(at(60)).await;
            // Software put needs the *target's* progress engine, and node 1
            // is hung from 50µs to 250µs: servicing must wait for recovery.
            let h = a.sw_put(16, src, dst, 8).await;
            b.progress_wait(&h.remote).await;
            landed.set(sim.now());
        });
    }
    sim.run();
    assert_eq!(b.read_i64(dst), 99);
    assert!(
        landed.get() >= at(250),
        "hung node serviced work at {} (before recovery)",
        landed.get()
    );
}

#[test]
fn fail_fast_panics_when_the_plan_outlasts_the_retries() {
    let topo = Topology::for_procs(32, 16);
    let dead = first_internode_link(&topo);
    // Link never comes back within reach of one retry.
    let plan = FaultPlan::new(3)
        .route_update_delay(us(100_000)) // routes never update in time
        .link_down(dead, at(10), at(900_000));
    let policy = RetryPolicy {
        timeout: us(10),
        backoff: us(1),
        max_retries: 1,
        failure: FailureMode::FailFast,
    };
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(32)
            .procs_per_node(16)
            .contention(true)
            .faults(plan)
            .retry(policy),
    );
    let a = m.rank(0);
    let src = a.alloc(8);
    let dst = m.rank(16).alloc(8);
    sim.clone().spawn(async move {
        sim.sleep_until(at(20)).await;
        let h = a.rdma_put(16, src, dst, 8).await;
        h.remote.wait().await;
    });
    let sim2 = m.sim().clone();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || sim2.run()))
        .expect_err("fail-fast policy must panic on retry exhaustion");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("lost after"),
        "unexpected panic payload: {msg}"
    );
}

#[test]
fn best_effort_gives_up_and_completes_without_data() {
    let topo = Topology::for_procs(32, 16);
    let dead = first_internode_link(&topo);
    let plan =
        FaultPlan::new(3)
            .route_update_delay(us(100_000))
            .link_down(dead, at(10), at(900_000));
    let policy = RetryPolicy {
        timeout: us(10),
        backoff: us(1),
        max_retries: 1,
        failure: FailureMode::BestEffort,
    };
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(32)
            .procs_per_node(16)
            .contention(true)
            .faults(plan)
            .retry(policy),
    );
    let a = m.rank(0);
    let b = m.rank(16);
    let src = a.alloc(8);
    let dst = b.alloc(8);
    a.write_i64(src, 7);
    b.write_i64(dst, 0);
    {
        let sim = sim.clone();
        sim.clone().spawn(async move {
            sim.sleep_until(at(20)).await;
            let h = a.rdma_put(16, src, dst, 8).await;
            h.remote.wait().await;
            h.local.wait().await;
        });
    }
    sim.run();
    // The run completed, but the payload never landed.
    assert_eq!(b.read_i64(dst), 0);
    assert!(m.stats().counter("pami.gave_up") >= 1);
}
