//! Semantics tests for the PAMI-like layer: data movement correctness,
//! timing against the closed-form cost models, progress-engine behaviour,
//! ordering, and object cost accounting.

use desim::{Sim, SimDuration};
use pami_sim::{Machine, MachineConfig, RmwOp};
use std::cell::RefCell;
use std::rc::Rc;

fn machine(nprocs: usize) -> (Sim, Machine) {
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(nprocs).procs_per_node(1));
    (sim, m)
}

#[test]
fn rdma_put_moves_data_and_completes() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let src = a.alloc(64);
    let dst = b.alloc(64);
    a.write_bytes(src, &[7u8; 64]);
    let b2 = b.clone();
    let h = sim.spawn(async move {
        let h = a.rdma_put(1, src, dst, 64).await;
        h.remote.wait().await;
        assert_eq!(b2.read_bytes(dst, 64), vec![7u8; 64]);
        h.local.wait().await;
    });
    sim.run();
    assert!(h.is_done());
}

#[test]
fn rdma_get_blocking_latency_matches_paper() {
    // Ranks on adjacent nodes (1 hop), 16-byte get: 2.89 us.
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let src = b.alloc(16);
    b.write_bytes(src, b"0123456789abcdef");
    let dst = a.alloc(16);
    let params = m.params().clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        let done = a.rdma_get(1, dst, src, 16).await;
        done.wait().await;
        s.sleep(params.o_recv).await;
        let lat = s.now() - t0;
        assert_eq!(a.read_bytes(dst, 16), b"0123456789abcdef".to_vec());
        lat
    });
    sim.run();
    let lat = h.try_result().unwrap().as_us();
    assert!((lat - 2.89).abs() < 0.02, "get latency {lat} != 2.89us");
}

#[test]
fn rdma_put_blocking_latency_matches_paper() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let src = a.alloc(16);
    let dst = b.alloc(16);
    let params = m.params().clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        let h = a.rdma_put(1, src, dst, 16).await;
        h.local.wait().await;
        s.sleep(params.o_put_local).await;
        s.now() - t0
    });
    sim.run();
    let lat = h.try_result().unwrap().as_us();
    assert!((lat - 2.70).abs() < 0.02, "put latency {lat} != 2.70us");
}

#[test]
fn put_snapshot_at_post_time() {
    // Buffer-reuse semantics: modifying the source after posting must not
    // affect the data in flight.
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let src = a.alloc(8);
    let dst = b.alloc(8);
    a.write_i64(src, 111);
    let a2 = a.clone();
    let b2 = b.clone();
    sim.spawn(async move {
        let h = a2.rdma_put(1, src, dst, 8).await;
        a2.write_i64(src, 999); // scribble immediately after post
        h.remote.wait().await;
        assert_eq!(b2.read_i64(dst), 111);
    });
    sim.run();
}

#[test]
fn sw_put_requires_target_progress() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let src = a.alloc(8);
    let dst = b.alloc(8);
    a.write_i64(src, 5);
    let applied = Rc::new(RefCell::new(Vec::<(f64, i64)>::new()));

    let s = sim.clone();
    let b2 = b.clone();
    let applied2 = Rc::clone(&applied);
    sim.spawn(async move {
        let h = a.sw_put(1, src, dst, 8).await;
        // Give the network plenty of time: without target progress the data
        // must still not be visible.
        s.sleep(SimDuration::from_us(50)).await;
        applied2
            .borrow_mut()
            .push((s.now().as_us(), b2.read_i64(dst)));
        h.remote.wait().await;
        applied2
            .borrow_mut()
            .push((s.now().as_us(), b2.read_i64(dst)));
    });
    // Target only advances at t = 100us.
    let s2 = sim.clone();
    let b3 = b.clone();
    sim.spawn(async move {
        s2.sleep(SimDuration::from_us(100)).await;
        b3.advance(0, usize::MAX).await;
    });
    sim.run();
    let log = applied.borrow();
    assert_eq!(log[0].1, 0, "data visible before target progress");
    assert_eq!(log[1].1, 5);
    assert!(log[1].0 >= 100.0, "completion only after target advanced");
}

#[test]
fn sw_get_round_trip_through_target_cpu() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let remote = b.alloc(32);
    b.write_bytes(remote, &[9u8; 32]);
    let local = a.alloc(32);
    // Async progress thread at the target services the request.
    let _at = b.start_progress_thread(0);
    let a2 = a.clone();
    let h = sim.spawn(async move {
        let done = a2.sw_get(1, local, remote, 32).await;
        done.wait().await;
        a2.read_bytes(local, 32)
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    assert_eq!(h.try_result().unwrap(), vec![9u8; 32]);
    sim.shutdown();
}

#[test]
fn fallback_get_slower_than_rdma_get() {
    let (sim, m) = machine(2);
    let a = m.rank(0);
    let b = m.rank(1);
    let remote = b.alloc(1024);
    let local = a.alloc(1024);
    let _at = b.start_progress_thread(0);
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        a.rdma_get(1, local, remote, 1024).await.wait().await;
        let rdma = s.now() - t0;
        let t1 = s.now();
        a.sw_get(1, local, remote, 1024).await.wait().await;
        let sw = s.now() - t1;
        (rdma, sw)
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    let (rdma, sw) = h.try_result().unwrap();
    assert!(sw > rdma, "fallback {sw} must exceed rdma {rdma}");
    sim.shutdown();
}

#[test]
fn rmw_fetch_add_hands_out_unique_values() {
    let (sim, m) = machine(8);
    let owner = m.rank(0);
    let counter = owner.alloc(8);
    let _at = owner.start_progress_thread(0);
    let got = Rc::new(RefCell::new(Vec::<i64>::new()));
    for r in 1..8 {
        let rk = m.rank(r);
        let got = Rc::clone(&got);
        sim.spawn(async move {
            for _ in 0..5 {
                let done = rk.rmw(0, counter, RmwOp::FetchAdd(1)).await;
                let v = done.wait().await;
                got.borrow_mut().push(v);
            }
        });
    }
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(100));
    let mut vals = got.borrow().clone();
    vals.sort_unstable();
    assert_eq!(vals, (0..35).collect::<Vec<i64>>());
    assert_eq!(owner.read_i64(counter), 35);
    sim.shutdown();
}

#[test]
fn rmw_swap_and_compare_swap() {
    let (sim, m) = machine(2);
    let owner = m.rank(0);
    let cell = owner.alloc(8);
    owner.write_i64(cell, 10);
    let _at = owner.start_progress_thread(0);
    let rk = m.rank(1);
    let h = sim.spawn(async move {
        let old = rk.rmw(0, cell, RmwOp::Swap(20)).await.wait().await;
        let cas_fail = rk
            .rmw(
                0,
                cell,
                RmwOp::CompareSwap {
                    compare: 999,
                    swap: 1,
                },
            )
            .await
            .wait()
            .await;
        let cas_ok = rk
            .rmw(
                0,
                cell,
                RmwOp::CompareSwap {
                    compare: 20,
                    swap: 30,
                },
            )
            .await
            .wait()
            .await;
        (old, cas_fail, cas_ok)
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    assert_eq!(h.try_result().unwrap(), (10, 20, 20));
    assert_eq!(owner.read_i64(cell), 30);
    sim.shutdown();
}

#[test]
fn progress_wait_services_remote_requests() {
    // Default (D) mode: rank 0 blocks on its own get while rank 1's rmw is
    // queued at rank 0 — progress_wait must service it.
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let counter = r0.alloc(8);
    let remote_buf = r1.alloc(4096);
    let local_buf = r0.alloc(4096);

    let r0b = r0.clone();
    sim.spawn(async move {
        // Blocking get via progress_wait: keeps the progress engine running.
        let done = r0b.rdma_get(1, local_buf, remote_buf, 4096).await;
        r0b.progress_wait(&done).await;
        // Then wait long enough that the rmw from rank 1 has arrived, again
        // inside progress_wait (simulating a blocking ARMCI call).
        let never: desim::Completion<()> = desim::Completion::new();
        let s = r0b.machine().sim().clone();
        let n2 = never.clone();
        s.schedule_in(SimDuration::from_us(200), move || n2.complete(()));
        r0b.progress_wait(&never).await;
    });
    let h = sim.spawn(async move {
        let done = r1.rmw(0, counter, RmwOp::FetchAdd(7)).await;
        done.wait().await
    });
    sim.run();
    assert_eq!(h.try_result(), Some(0));
    assert_eq!(r0.read_i64(counter), 7);
}

#[test]
fn rmw_queues_while_target_computes() {
    // Without an async thread, a computing target delays AMO service.
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let counter = r0.alloc(8);
    let compute = SimDuration::from_us(300);

    let r0b = r0.clone();
    let s = sim.clone();
    sim.spawn(async move {
        s.sleep(compute).await; // rank 0 computes; no progress
        r0b.advance(0, usize::MAX).await;
    });
    let s2 = sim.clone();
    let h = sim.spawn(async move {
        s2.sleep(SimDuration::from_us(1)).await;
        let t0 = s2.now();
        let done = r1.rmw(0, counter, RmwOp::FetchAdd(1)).await;
        done.wait().await;
        s2.now() - t0
    });
    sim.run();
    let lat = h.try_result().unwrap();
    assert!(
        lat >= SimDuration::from_us(295),
        "rmw should wait for compute to end, got {lat}"
    );
}

#[test]
fn async_thread_services_during_target_compute() {
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let counter = r0.alloc(8);
    let _at = r0.start_progress_thread(0);

    // Rank 0's main thread computes for 300us, but the AT services anyway.
    let s = sim.clone();
    sim.spawn(async move {
        s.sleep(SimDuration::from_us(300)).await;
    });
    let s2 = sim.clone();
    let h = sim.spawn(async move {
        s2.sleep(SimDuration::from_us(1)).await;
        let t0 = s2.now();
        let done = r1.rmw(0, counter, RmwOp::FetchAdd(1)).await;
        done.wait().await;
        s2.now() - t0
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    let lat = h.try_result().unwrap();
    assert!(
        lat < SimDuration::from_us(10),
        "AT should service promptly, got {lat}"
    );
    sim.shutdown();
}

#[test]
fn acc_f64_accumulates_associatively() {
    let (sim, m) = machine(3);
    let owner = m.rank(0);
    let dst = owner.alloc(4 * 8);
    owner.write_f64s(dst, &[1.0, 1.0, 1.0, 1.0]);
    let _at = owner.start_progress_thread(0);
    for r in 1..3 {
        let rk = m.rank(r);
        let src = rk.alloc(4 * 8);
        rk.write_f64s(src, &[r as f64; 4]);
        sim.spawn(async move {
            let h = rk.acc_f64(0, src, dst, 4, 2.0).await;
            h.remote.wait().await;
        });
    }
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    let got = owner.read_f64s(dst, 4);
    // 1 + 2*1 + 2*2 = 7 per element, regardless of arrival order.
    assert_eq!(got, vec![7.0; 4]);
    sim.shutdown();
}

#[test]
fn am_dispatch_runs_registered_handler() {
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let seen = Rc::new(RefCell::new(None));
    let seen2 = Rc::clone(&seen);
    r1.register_dispatch(
        0,
        42,
        Rc::new(move |env, msg| {
            *seen2.borrow_mut() = Some((env.rank, msg.src, msg.header.clone(), msg.payload.len()));
        }),
    );
    let _at = r1.start_progress_thread(0);
    sim.spawn(async move {
        r0.am_send(1, 42, vec![1, 2], vec![0u8; 100]).await;
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    assert_eq!(
        *seen.borrow(),
        Some((1usize, 0usize, vec![1u8, 2], 100usize))
    );
    sim.shutdown();
}

#[test]
fn unhandled_am_counts() {
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let _at = r1.start_progress_thread(0);
    sim.spawn(async move {
        r0.am_send(1, 99, vec![], vec![]).await;
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(10));
    assert_eq!(m.stats().counter("pami.am_unhandled"), 1);
    sim.shutdown();
}

#[test]
fn endpoint_creation_costs_beta_and_alpha_once() {
    let (sim, m) = machine(4);
    let r0 = m.rank(0);
    let params = m.params().clone();
    let s = sim.clone();
    let r0b = r0.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        assert!(r0b.ensure_endpoint(1, 0).await);
        assert!(!r0b.ensure_endpoint(1, 0).await); // cached
        assert!(r0b.ensure_endpoint(2, 0).await);
        s.now() - t0
    });
    sim.run();
    assert_eq!(h.try_result().unwrap(), params.endpoint_create * 2);
    assert_eq!(r0.endpoint_count(), 2);
    // Space: M_e = zeta * alpha * rho (Eq. 3) with zeta=2, rho=1.
    assert_eq!(m.space(0).endpoints, 2 * params.endpoint_bytes);
}

#[test]
fn region_registration_costs_and_limit() {
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(2).memregion_limit(Some(2)));
    let r0 = m.rank(0);
    let params = m.params().clone();
    let r0b = r0.clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        let a = r0b.register_region(0, 4096).await;
        let b = r0b.register_region(8192, 4096).await;
        let c = r0b.register_region(16384, 4096).await;
        ((a.is_ok(), b.is_ok(), c.is_err()), s.now() - t0)
    });
    sim.run();
    let ((a, b, c), elapsed) = h.try_result().unwrap();
    assert!(a && b && c);
    // Two successful registrations cost 2 * delta.
    assert_eq!(elapsed, params.memregion_create * 2);
    // Space: M_r contribution = 2 * gamma (Eq. 5).
    assert_eq!(m.space(0).regions, 2 * params.memregion_bytes);
    // Deregistering frees a slot.
    r0.deregister_region(r0.find_region(0, 16).unwrap());
    assert_eq!(r0.region_count(), 1);
    assert_eq!(m.space(0).regions, params.memregion_bytes);
}

#[test]
fn find_region_respects_bounds() {
    let (sim, m) = machine(1);
    let r0 = m.rank(0);
    let r0b = r0.clone();
    sim.spawn(async move {
        r0b.register_region(100, 50).await.unwrap();
    });
    sim.run();
    assert!(r0.find_region(100, 50).is_some());
    assert!(r0.find_region(120, 10).is_some());
    assert!(r0.find_region(90, 10).is_none());
    assert!(r0.find_region(140, 20).is_none()); // crosses the end
}

#[test]
fn context_creation_cost_matches_table2() {
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), MachineConfig::new(1).contexts(2));
    let r0 = m.rank(0);
    let params = m.params().clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        let t0 = s.now();
        r0.create_contexts().await;
        s.now() - t0
    });
    sim.run();
    // M_c = eps * rho (Eq. 1), T_c = rho * context_create (Eq. 2).
    assert_eq!(h.try_result().unwrap(), params.context_create * 2);
    assert_eq!(m.space(0).contexts, 2 * params.context_bytes);
}

#[test]
fn ordered_traffic_fifo_unordered_amo_overtakes() {
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let big_src = r0.alloc(1 << 20);
    let big_dst = r1.alloc(1 << 20);
    let small_src = r0.alloc(16);
    let small_dst = r1.alloc(16);
    let counter = r1.alloc(8);
    let _at = r1.start_progress_thread(0);
    let events = Rc::new(RefCell::new(Vec::<&'static str>::new()));
    let ev = Rc::clone(&events);
    sim.spawn(async move {
        let big = r0.rdma_put(1, big_src, big_dst, 1 << 20).await;
        let small = r0.rdma_put(1, small_src, small_dst, 16).await;
        let amo = r0.rmw(1, counter, RmwOp::FetchAdd(1)).await;
        let e1 = ev.clone();
        let s1 = big.remote.clone();
        r0.machine().sim().spawn(async move {
            s1.wait().await;
            e1.borrow_mut().push("big");
        });
        let e2 = ev.clone();
        let s2 = small.remote.clone();
        r0.machine().sim().spawn(async move {
            s2.wait().await;
            e2.borrow_mut().push("small");
        });
        let e3 = ev.clone();
        r0.machine().sim().spawn(async move {
            amo.wait().await;
            e3.borrow_mut().push("amo");
        });
    });
    sim.run_until(desim::SimTime::ZERO + SimDuration::from_ms(100));
    let order = events.borrow().clone();
    // AMO (unordered) finishes before the puts; small put must NOT beat big.
    assert_eq!(order.first(), Some(&"amo"), "order = {order:?}");
    let big_pos = order.iter().position(|&e| e == "big").unwrap();
    let small_pos = order.iter().position(|&e| e == "small").unwrap();
    assert!(big_pos < small_pos, "FIFO violated: {order:?}");
    sim.shutdown();
}

#[test]
fn advance_lock_serializes_threads() {
    // Two tasks advancing the same context serialize on the lock while a
    // slow item is serviced.
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let r1 = m.rank(1);
    let dst = r0.alloc(1 << 16);
    let src = r1.alloc(1 << 16);
    // Enqueue two software puts at rank 0.
    sim.spawn(async move {
        r1.sw_put(0, src, dst, 1 << 16).await;
        r1.sw_put(0, src, dst, 1 << 16).await;
    });
    let s = sim.clone();
    let r0a = r0.clone();
    let h1 = sim.spawn(async move {
        s.sleep(SimDuration::from_us(100)).await;
        let t0 = s.now();
        r0a.advance(0, usize::MAX).await;
        (t0, s.now())
    });
    let s2 = sim.clone();
    let r0b = r0.clone();
    let h2 = sim.spawn(async move {
        s2.sleep(SimDuration::from_us(100)).await;
        let t0 = s2.now();
        r0b.advance(0, usize::MAX).await;
        (t0, s2.now())
    });
    sim.run();
    let (a0, a1) = h1.try_result().unwrap();
    let (b0, b1) = h2.try_result().unwrap();
    assert_eq!(a0, b0);
    // The second advance returns only after the first releases the lock.
    assert!(b1 >= a1);
}

#[test]
fn stats_track_operations() {
    let (sim, m) = machine(2);
    let r0 = m.rank(0);
    let src = r0.alloc(64);
    let dst = m.rank(1).alloc(64);
    sim.spawn(async move {
        r0.rdma_put(1, src, dst, 64).await.remote.wait().await;
        r0.rdma_get(1, src, dst, 64).await.wait().await;
    });
    sim.run();
    assert_eq!(m.stats().counter("pami.rdma_put"), 1);
    assert_eq!(m.stats().counter("pami.rdma_get"), 1);
    assert!(m.net_messages() >= 3);
    assert!(m.net_bytes() >= 128);
}
