//! Per-operation deadlines: timeout → exponential backoff → bounded retry.
//!
//! When a fault plan is installed on the machine, every network leg a PAMI
//! operation issues is wrapped in this state machine: an attempt that the
//! fault layer drops is noticed after [`RetryPolicy::timeout`], the sender
//! backs off exponentially ([`RetryPolicy::backoff`] · 2^attempt) and
//! re-injects, up to [`RetryPolicy::max_retries`] times. Retransmits go
//! through the normal delivery path, so they still respect per-pair
//! ordering: a retried put clamps behind any younger put to the same target
//! that was delivered in the meantime (the pair front only advances on
//! *delivery*, never on a drop).
//!
//! On a simulated network the sender learns the drop outcome synchronously,
//! so the timeout needs no timer bookkeeping: the retry wait is modelled as
//! one sleep to `inject + timeout + backoff·2^attempt`, recorded as a
//! `retry`-category flight segment for the critical-path analyzer.

use desim::{SimDuration, SimTime};

/// What happens when an operation exhausts its retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Panic with a diagnostic — the run is considered broken. The right
    /// default for calibration workloads, where losing data silently would
    /// corrupt results.
    FailFast,
    /// Complete the operation without its data effect and count it in
    /// `pami.gave_up` — the run limps on, modelling an application-level
    /// resilience layer above the runtime.
    BestEffort,
}

/// Timeout/backoff/bounded-retry parameters for one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long after injection an unacknowledged attempt is declared lost.
    pub timeout: SimDuration,
    /// Base backoff added after the timeout; doubles per attempt.
    pub backoff: SimDuration,
    /// Retransmit attempts before giving up (0 = never retransmit).
    pub max_retries: u32,
    /// Behavior on retry exhaustion.
    pub failure: FailureMode,
}

impl Default for RetryPolicy {
    /// 30 µs timeout, 5 µs base backoff, 8 retries, fail-fast.
    fn default() -> RetryPolicy {
        RetryPolicy {
            timeout: SimDuration::from_us(30),
            backoff: SimDuration::from_us(5),
            max_retries: 8,
            failure: FailureMode::FailFast,
        }
    }
}

impl RetryPolicy {
    /// Backoff after attempt number `attempt` (0-based): `backoff · 2^attempt`,
    /// with the shift clamped so pathological policies cannot overflow.
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        self.backoff * (1u64 << attempt.min(20))
    }

    /// When the retransmit of an attempt injected at `inject` goes out:
    /// after the timeout expires plus the attempt's backoff.
    pub fn resume_at(&self, inject: SimTime, attempt: u32) -> SimTime {
        inject + self.timeout + self.backoff_delay(attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_delay(0), SimDuration::from_us(5));
        assert_eq!(p.backoff_delay(1), SimDuration::from_us(10));
        assert_eq!(p.backoff_delay(3), SimDuration::from_us(40));
        // Clamped shift: no overflow for absurd attempt counts.
        assert_eq!(p.backoff_delay(64), p.backoff_delay(20));
    }

    #[test]
    fn resume_is_timeout_plus_backoff() {
        let p = RetryPolicy::default();
        let t0 = SimTime::ZERO + SimDuration::from_us(100);
        assert_eq!(
            p.resume_at(t0, 0),
            t0 + SimDuration::from_us(30) + SimDuration::from_us(5)
        );
        assert!(p.resume_at(t0, 2) > p.resume_at(t0, 1));
    }
}
