//! The simulated machine: ranks, memories, contexts and the interconnect.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

use desim::memprof::{self, MemTag};
use desim::timeline::{SeriesKind, Timeline};
use desim::{FaultPlan, FlightRecorder, OpId, Sim, SimTime, Stats};

/// Per-rank backing memory, region tables and endpoint sets.
static RANKMEM_TAG: MemTag = MemTag::new("pami.rankmem");
use torus5d::{BgqParams, Mapping, NetState, Topology};

use crate::batcher::AmBatchConfig;
use crate::context::{AmHandler, CtxState};
use crate::retry::RetryPolicy;
use crate::space::{SpaceAccount, SpaceSnapshot};

/// Configuration of a simulated partition.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processes (`p`).
    pub nprocs: usize,
    /// Processes per node (`c`, 1–16).
    pub procs_per_node: usize,
    /// Cost-model constants.
    pub params: BgqParams,
    /// Communication contexts per rank (`ρ`, 1 or 2 in the paper).
    pub contexts_per_rank: usize,
    /// Enable per-link contention modelling.
    pub contention: bool,
    /// Maximum simultaneously registered memory regions per rank
    /// (`None` = unlimited). Exceeding it makes registration fail, forcing
    /// the ARMCI fall-back protocol — the paper's "creation of memory region
    /// may fail due to memory constraints" case.
    pub memregion_limit: Option<usize>,
    /// Record per-link occupancy even on the analytic (non-contended)
    /// network path, for utilization heatmaps. Implied by `contention`.
    pub track_links: bool,
    /// Process→torus mapping.
    pub mapping: Mapping,
    /// Explicit torus shape (default: the standard BG/Q partition shape for
    /// the node count). Useful for stressing specific dimensions.
    pub shape: Option<torus5d::TorusShape>,
    /// Deterministic fault schedule to install on the interconnect
    /// (`None` = perfect network). An *empty* plan is installed but arms
    /// nothing: outputs stay byte-identical to `None`.
    pub fault_plan: Option<FaultPlan>,
    /// Timeout/backoff/retry policy for network legs; only consulted when a
    /// non-empty fault plan is installed.
    pub retry: RetryPolicy,
    /// Conservative-parallel worker shards. `1` (the default) is the plain
    /// serial engine; `> 1` block-partitions the ranks across shards and
    /// routes cross-shard network legs through window-boundary mailboxes
    /// (see [`crate::shard`]) — all simulation outputs stay byte-identical
    /// to the serial engine for any value.
    pub workers: usize,
    /// Per-destination active-message aggregation (see [`crate::batcher`]).
    /// `None` (the default) keeps [`crate::PamiRank::send_am`] on the
    /// unbatched hot path — the AM layer is zero-cost when disabled.
    pub am_batch: Option<AmBatchConfig>,
}

impl MachineConfig {
    /// A conventional configuration: `nprocs` ranks, 16/node, analytic
    /// network, one context, unlimited regions, `ABCDET` mapping.
    pub fn new(nprocs: usize) -> MachineConfig {
        MachineConfig {
            nprocs,
            procs_per_node: 16,
            params: BgqParams::default(),
            contexts_per_rank: 1,
            contention: false,
            track_links: false,
            memregion_limit: None,
            mapping: Mapping::abcdet(),
            shape: None,
            fault_plan: None,
            retry: RetryPolicy::default(),
            workers: 1,
            am_batch: None,
        }
    }

    /// Enable per-destination active-message aggregation: buffers flush at
    /// `max_bytes` of framed payload or after `window` of sim time,
    /// whichever comes first.
    pub fn am_batching(mut self, max_bytes: usize, window: desim::SimDuration) -> Self {
        self.am_batch = Some(AmBatchConfig { max_bytes, window });
        self
    }

    /// Set the conservative-parallel worker shard count (1 = serial).
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one worker shard");
        self.workers = n;
        self
    }

    /// Set processes per node.
    pub fn procs_per_node(mut self, c: usize) -> Self {
        self.procs_per_node = c;
        self
    }

    /// Set the context count (ρ).
    pub fn contexts(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one context");
        self.contexts_per_rank = n;
        self
    }

    /// Enable/disable link contention.
    pub fn contention(mut self, on: bool) -> Self {
        self.contention = on;
        self
    }

    /// Enable per-link occupancy accounting on the analytic network path.
    pub fn track_links(mut self, on: bool) -> Self {
        self.track_links = on;
        self
    }

    /// Set a per-rank memory-region limit.
    pub fn memregion_limit(mut self, limit: Option<usize>) -> Self {
        self.memregion_limit = limit;
        self
    }

    /// Override the cost parameters.
    pub fn params(mut self, p: BgqParams) -> Self {
        self.params = p;
        self
    }

    /// Force an explicit torus shape (must hold ≥ nprocs/procs_per_node
    /// nodes).
    pub fn shape(mut self, dims: [u16; 5]) -> Self {
        self.shape = Some(torus5d::TorusShape::new(dims));
        self
    }

    /// Install a deterministic fault schedule on the interconnect.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the timeout/backoff/retry policy used under fault injection.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }
}

/// Identifier of a registered memory region within one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// Why memory-region registration failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The per-rank region limit was reached (paper: registration "may fail
    /// due to memory constraints" at scale).
    LimitReached,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::LimitReached => write!(f, "memory region limit reached"),
        }
    }
}

impl std::error::Error for RegionError {}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Region {
    pub off: usize,
    pub len: usize,
    pub active: bool,
}

/// Per-rank simulation state.
///
/// Materialized lazily: a rank that is never touched (no allocation, no
/// memory access, no incoming work) has no `RankState` at all — see
/// [`Machine::rank_state`].
pub(crate) struct RankState {
    pub memory: RefCell<Vec<u8>>,
    pub next_alloc: Cell<usize>,
    pub regions: RefCell<Vec<Region>>,
    pub active_regions: Cell<usize>,
    pub contexts: Vec<Rc<CtxState>>,
    pub endpoints: RefCell<HashSet<(u32, u8)>>,
    pub space: SpaceAccount,
    /// The operation this rank is currently issuing/completing, threaded
    /// down into every message the rank injects while set. `None` when no
    /// attribution is active (flight recorder off, or between operations).
    pub cur_op: Cell<Option<OpId>>,
    /// Context index the rank's asynchronous progress thread services once
    /// armed via [`crate::PamiRank::enable_async_progress`]; `None` = the
    /// rank runs default progress only.
    pub at_ctx: Cell<Option<usize>>,
    /// The lazily spawned progress-thread handle, `Some` from the moment
    /// the first work item targets this armed rank until the machine stops
    /// its progress threads.
    pub at: RefCell<Option<crate::AsyncThread>>,
}

impl RankState {
    fn new(contexts: usize) -> RankState {
        let _mem = memprof::scope(&RANKMEM_TAG);
        RankState {
            memory: RefCell::new(Vec::new()),
            next_alloc: Cell::new(0),
            regions: RefCell::new(Vec::new()),
            active_regions: Cell::new(0),
            contexts: (0..contexts).map(|_| Rc::new(CtxState::new())).collect(),
            endpoints: RefCell::new(HashSet::new()),
            space: SpaceAccount::default(),
            cur_op: Cell::new(None),
            at_ctx: Cell::new(None),
            at: RefCell::new(None),
        }
    }

    pub fn write(&self, off: usize, data: &[u8]) {
        let mut mem = self.memory.borrow_mut();
        let end = off + data.len();
        if mem.len() < end {
            let _mem_tag = memprof::scope(&RANKMEM_TAG);
            mem.resize(end, 0);
        }
        mem[off..end].copy_from_slice(data);
    }

    pub fn read(&self, off: usize, len: usize) -> Vec<u8> {
        let mut mem = self.memory.borrow_mut();
        let end = off + len;
        if mem.len() < end {
            let _mem_tag = memprof::scope(&RANKMEM_TAG);
            mem.resize(end, 0);
        }
        mem[off..end].to_vec()
    }

    pub fn read_i64(&self, off: usize) -> i64 {
        let b = self.read(off, 8);
        i64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    pub fn write_i64(&self, off: usize, v: i64) {
        self.write(off, &v.to_le_bytes());
    }
}

/// Per-rank initialization hook, run once when a rank materializes.
pub(crate) type RankInitHook = Rc<dyn Fn(crate::PamiRank)>;

pub(crate) struct MachineInner {
    pub sim: Sim,
    pub cfg: MachineConfig,
    pub topo: Topology,
    /// Cost constants, shared so issue paths can hold them across `await`s
    /// and inside `'static` closures without cloning the whole struct.
    pub params: Rc<BgqParams>,
    pub net: RefCell<NetState>,
    /// Lazily materialized per-rank state, keyed by rank id. Ranks the
    /// program never touches never appear here — the map is sized by the
    /// *active* rank set, not by `nprocs`.
    pub ranks: RefCell<desim::FxHashMap<usize, Rc<RankState>>>,
    /// Hook run once per rank, right after its state materializes (upper
    /// layers hang their own per-rank init — dispatch tables, notification
    /// cells — off this instead of looping over all `nprocs` ranks).
    pub rank_init: RefCell<Option<RankInitHook>>,
    pub stats: Stats,
    /// True when a *non-empty* fault plan is installed: the only case in
    /// which the retry machinery arms itself. Cached so the fault-free hot
    /// path costs a single bool read.
    pub faults_active: bool,
    /// Pre-interned timeline series, set by [`Machine::enable_timeline`].
    /// `None` (the default) keeps every producer at one `Option` check.
    pub tl_ids: Cell<Option<TlIds>>,
    /// Retries scheduled but not yet resumed, mirrored into the
    /// `pami.retry_backlog` gauge while the timeline is enabled.
    pub retry_backlog: Cell<i64>,
    /// Shard table + window mailbox of the conservative parallel mode.
    /// `None` when `workers == 1` or a non-empty fault plan is installed
    /// (faults pin the machine to the serial path).
    pub shards: Option<Rc<crate::shard::Shards>>,
    /// Machine-wide active-message dispatch table, consulted when a
    /// destination's per-context table misses (see [`Machine::register_am`]).
    pub am_handlers: RefCell<desim::FxHashMap<u16, AmHandler>>,
    /// Per-destination AM aggregation buffers; `None` unless
    /// [`MachineConfig::am_batching`] was configured.
    pub batcher: Option<Rc<crate::batcher::Batcher>>,
}

/// Pre-interned timeline series handles for the PAMI-layer producers.
/// `Copy` so instrumentation sites read them out of a `Cell` for free.
#[derive(Clone, Copy)]
pub struct TlIds {
    /// `pami.ctx.lock_wait_ps` — context-lock wait per window.
    pub lock_wait: desim::SeriesId,
    /// `pami.ctx.lock_hold_ps` — context-lock hold per window.
    pub lock_hold: desim::SeriesId,
    /// `pami.queue_depth` — gauge of the deepest context queue sampled.
    pub queue_depth: desim::SeriesId,
    /// `pami.retries` — retransmissions per window.
    pub retries: desim::SeriesId,
    /// `pami.timeouts` — delivery deadline hits per window.
    pub timeouts: desim::SeriesId,
    /// `pami.retry_backlog` — gauge of scheduled-but-unsent retries.
    pub retry_backlog: desim::SeriesId,
    /// Active-message series, interned only when AM batching is configured
    /// so machines that never touch the AM layer keep their timeline
    /// snapshots byte-identical to pre-AM builds.
    pub am: Option<AmTlIds>,
}

/// Pre-interned timeline series for the active-message layer.
#[derive(Clone, Copy)]
pub struct AmTlIds {
    /// `am.sent` — AMs accepted by `send_am` per window.
    pub sent: desim::SeriesId,
    /// `am.batches` — flushed wire messages coalescing ≥ 2 AMs.
    pub batches: desim::SeriesId,
    /// `am.flushes` — aggregation-buffer flushes (any size).
    pub flushes: desim::SeriesId,
    /// `am.wire_msgs` — wire messages the AM layer injected.
    pub wire_msgs: desim::SeriesId,
    /// `am.bytes` — wire bytes (framing included) the AM layer injected.
    pub bytes: desim::SeriesId,
    /// `am.queue_depth` — gauge of AMs waiting in aggregation buffers.
    pub queue_depth: desim::SeriesId,
    /// `am.oldest_wait_ps` — gauge: at each flush, how long the oldest
    /// entry waited (feeds the `am-flush-stall` health rule).
    pub oldest_wait: desim::SeriesId,
}

/// A simulated Blue Gene/Q partition running `nprocs` PGAS processes.
///
/// Clone freely; all clones share the underlying state. Obtain per-rank
/// handles with [`Machine::rank`] and spawn rank programs on the associated
/// [`Sim`].
#[derive(Clone)]
pub struct Machine {
    pub(crate) inner: Rc<MachineInner>,
}

impl Machine {
    /// Build a machine on `sim` with the given configuration.
    pub fn new(sim: Sim, cfg: MachineConfig) -> Machine {
        assert!(cfg.nprocs >= 1);
        let nodes = cfg.nprocs.div_ceil(cfg.procs_per_node);
        let shape = match cfg.shape {
            Some(shape) => {
                assert!(
                    shape.num_nodes() >= nodes,
                    "explicit shape {shape} too small for {nodes} nodes"
                );
                shape
            }
            None => torus5d::TorusShape::for_nodes(nodes),
        };
        let topo = Topology {
            shape,
            procs_per_node: cfg.procs_per_node,
            mapping: cfg.mapping.clone(),
        };
        let mut net = NetState::new(topo.clone(), cfg.params.clone(), cfg.contention);
        if cfg.track_links {
            net.set_link_tracking(true);
        }
        net.set_flight(sim.flight());
        net.set_tracer(sim.tracer());
        let faults_active = cfg.fault_plan.as_ref().is_some_and(|p| !p.is_empty());
        if let Some(plan) = &cfg.fault_plan {
            net.install_faults(plan.clone());
        }
        let stats = sim.stats();
        let params = Rc::new(cfg.params.clone());
        let shards = if cfg.workers > 1 && !faults_active {
            Some(Rc::new(crate::shard::Shards::new(
                cfg.nprocs,
                cfg.workers,
                &cfg.params,
            )))
        } else {
            None
        };
        let batcher = cfg
            .am_batch
            .map(|bc| Rc::new(crate::batcher::Batcher::new(bc)));
        Machine {
            inner: Rc::new(MachineInner {
                sim,
                cfg,
                topo,
                params,
                net: RefCell::new(net),
                ranks: RefCell::new(desim::FxHashMap::default()),
                rank_init: RefCell::new(None),
                stats,
                faults_active,
                tl_ids: Cell::new(None),
                retry_backlog: Cell::new(0),
                shards,
                am_handlers: RefCell::new(desim::FxHashMap::default()),
                batcher,
            }),
        }
    }

    /// Conservative-parallel worker shard count (1 = serial engine).
    pub fn workers(&self) -> usize {
        self.inner.cfg.workers
    }

    /// The shard owning `rank` (always 0 on a serial machine).
    pub fn shard_of(&self, rank: usize) -> usize {
        match &self.inner.shards {
            Some(sh) => sh.map.shard_of(rank),
            None => 0,
        }
    }

    /// `(cross-shard legs posted, windows pumped)` by the mailbox so far.
    /// Diagnostic only: these never reach the stats registry, which must
    /// stay byte-identical across worker counts.
    pub fn mail_counters(&self) -> (u64, u64) {
        match &self.inner.shards {
            Some(sh) => sh.counters(),
            None => (0, 0),
        }
    }

    /// Schedule a network leg's landing event: directly when `src` and `dst`
    /// share a shard (or the machine is serial), through the window-boundary
    /// mailbox when the leg crosses shards. Either way the callback executes
    /// at the exact `(at, seq)` position a direct `schedule` would have
    /// given it — see [`crate::shard`] for the argument.
    pub(crate) fn schedule_leg<F: FnOnce() + 'static>(
        &self,
        src: usize,
        dst: usize,
        at: SimTime,
        f: F,
    ) {
        if let Some(sh) = &self.inner.shards {
            if sh.map.cross(src, dst) {
                sh.post(&self.inner.sim, at, Box::new(f));
                return;
            }
        }
        self.inner.sim.schedule(at, f);
    }

    /// True when a non-empty fault plan is installed (deadlines and retries
    /// are armed).
    pub fn faults_active(&self) -> bool {
        self.inner.faults_active
    }

    /// The timeout/backoff/retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.cfg.retry
    }

    /// If the node hosting `rank` is hung at `now` per the fault plan, the
    /// time it resumes driving progress.
    pub fn node_hang_until(&self, rank: usize, now: SimTime) -> Option<SimTime> {
        if !self.inner.faults_active {
            return None;
        }
        let mut net = self.inner.net.borrow_mut();
        let node = net.route_table().node_of(rank);
        net.hang_until(node, now)
    }

    /// The simulation this machine runs on.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.inner.cfg.nprocs
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.inner.cfg
    }

    /// Cost-model constants.
    pub fn params(&self) -> &BgqParams {
        &self.inner.params
    }

    /// Shared handle to the cost constants, for `'static` closures that
    /// outlive the caller's borrow.
    pub(crate) fn params_rc(&self) -> Rc<BgqParams> {
        self.inner.params.clone()
    }

    /// Partition topology.
    pub fn topology(&self) -> &Topology {
        &self.inner.topo
    }

    /// Shared statistics registry (same as the simulation's).
    pub fn stats(&self) -> Stats {
        self.inner.stats.clone()
    }

    /// The simulation's shared message-lifecycle flight recorder (disabled
    /// unless [`Machine::enable_flight`] or `Sim::flight().enable(..)` was
    /// called).
    pub fn flight(&self) -> FlightRecorder {
        self.inner.sim.flight()
    }

    /// Turn on message-lifecycle recording with the given per-kind record
    /// budget. Convenience for `self.flight().enable(capacity)`.
    pub fn enable_flight(&self, capacity: usize) {
        self.inner.sim.flight().enable(capacity);
    }

    /// Turn on windowed telemetry: enable the simulation's [`Timeline`] with
    /// `window_ps`-wide windows (capped at `max_windows` per series, with
    /// deterministic coarsening past that), wire the network producers, and
    /// pre-intern the PAMI-layer series. Until this is called, every
    /// instrumentation site costs a single `Option`/flag check.
    pub fn enable_timeline(&self, window_ps: u64, max_windows: usize) {
        let tl = self.inner.sim.timeline();
        tl.enable(window_ps, max_windows);
        self.inner.net.borrow_mut().set_timeline(&tl);
        self.inner.tl_ids.set(Some(TlIds {
            lock_wait: tl.series("pami.ctx.lock_wait_ps", SeriesKind::Counter),
            lock_hold: tl.series("pami.ctx.lock_hold_ps", SeriesKind::Counter),
            queue_depth: tl.series("pami.queue_depth", SeriesKind::Gauge),
            retries: tl.series("pami.retries", SeriesKind::Counter),
            timeouts: tl.series("pami.timeouts", SeriesKind::Counter),
            retry_backlog: tl.series("pami.retry_backlog", SeriesKind::Gauge),
            // AM series only exist on machines that configured batching:
            // everyone else's snapshots stay byte-identical to pre-AM builds.
            am: self.inner.cfg.am_batch.map(|_| AmTlIds {
                sent: tl.series("am.sent", SeriesKind::Counter),
                batches: tl.series("am.batches", SeriesKind::Counter),
                flushes: tl.series("am.flushes", SeriesKind::Counter),
                wire_msgs: tl.series("am.wire_msgs", SeriesKind::Counter),
                bytes: tl.series("am.bytes", SeriesKind::Counter),
                queue_depth: tl.series("am.queue_depth", SeriesKind::Gauge),
                oldest_wait: tl.series("am.oldest_wait_ps", SeriesKind::Gauge),
            }),
        }));
        self.inner.retry_backlog.set(0);
    }

    /// The simulation's shared timeline (disabled unless
    /// [`Machine::enable_timeline`] or `Sim::timeline().enable(..)` ran).
    pub fn timeline(&self) -> Timeline {
        self.inner.sim.timeline()
    }

    /// Pre-interned PAMI series handles, `Some` only after
    /// [`Machine::enable_timeline`].
    #[inline]
    pub(crate) fn tl_ids(&self) -> Option<TlIds> {
        self.inner.tl_ids.get()
    }

    /// Pre-interned AM series handles, `Some` only after
    /// [`Machine::enable_timeline`] on a machine with AM batching configured.
    #[inline]
    pub(crate) fn am_tl(&self) -> Option<AmTlIds> {
        self.inner.tl_ids.get().and_then(|ids| ids.am)
    }

    /// Adjust the retry-backlog mirror and record the gauge.
    pub(crate) fn tl_retry_backlog(&self, at: SimTime, delta: i64) {
        if let Some(ids) = self.tl_ids() {
            let n = self.inner.retry_backlog.get() + delta;
            self.inner.retry_backlog.set(n);
            self.inner.sim.timeline().gauge(ids.retry_backlog, at, n);
        }
    }

    /// Handle for one rank. Cheap: no per-rank state is created until the
    /// handle is actually used.
    pub fn rank(&self, r: usize) -> crate::PamiRank {
        assert!(r < self.nprocs(), "rank {r} out of range");
        crate::PamiRank { m: self.clone(), r }
    }

    /// This rank's state, materializing it on first touch. Materialization
    /// creates the queues/contexts/region tables and then runs the
    /// registered init hook (if any) with the freshly inserted state already
    /// visible, so the hook may re-enter for the same rank without looping.
    pub(crate) fn rank_state(&self, r: usize) -> Rc<RankState> {
        assert!(r < self.nprocs(), "rank {r} out of range");
        if let Some(st) = self.inner.ranks.borrow().get(&r) {
            return Rc::clone(st);
        }
        let st = {
            let _mem = memprof::scope(&RANKMEM_TAG);
            let st = Rc::new(RankState::new(self.inner.cfg.contexts_per_rank));
            self.inner.ranks.borrow_mut().insert(r, Rc::clone(&st));
            st
        };
        let hook = self.inner.rank_init.borrow().clone();
        if let Some(hook) = hook {
            hook(self.rank(r));
        }
        st
    }

    /// Force rank `r`'s state into existence (runs the init hook if it has
    /// not run for this rank yet). Upper layers use this when they need a
    /// rank's runtime state outside any communication path.
    pub fn materialize_rank(&self, r: usize) {
        let _ = self.rank_state(r);
    }

    /// Register the per-rank init hook, run once for every rank as its
    /// state materializes. At most one hook; registering replaces the old.
    pub fn set_rank_init(&self, hook: Rc<dyn Fn(crate::PamiRank)>) {
        *self.inner.rank_init.borrow_mut() = Some(hook);
    }

    /// Ids of the ranks whose state has materialized, ascending.
    pub fn materialized_ranks(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.inner.ranks.borrow().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of ranks whose state has materialized.
    pub fn materialized_count(&self) -> usize {
        self.inner.ranks.borrow().len()
    }

    /// Stop every lazily spawned asynchronous progress thread (ascending
    /// rank order, for determinism). Ranks whose AT never spawned — or never
    /// materialized at all — cost nothing here.
    pub fn stop_progress_threads(&self) {
        for r in self.materialized_ranks() {
            let st = self.rank_state(r);
            let at = st.at.borrow_mut().take();
            if let Some(at) = at {
                at.stop();
            }
        }
    }

    /// Space-accounting snapshot for a rank. Does **not** materialize: an
    /// untouched rank reports the all-zero snapshot it would have anyway.
    pub fn space(&self, rank: usize) -> SpaceSnapshot {
        assert!(rank < self.nprocs(), "rank {rank} out of range");
        match self.inner.ranks.borrow().get(&rank) {
            Some(st) => st.space.snapshot(),
            None => SpaceSnapshot::default(),
        }
    }

    /// The context index on which *incoming* remote requests are enqueued:
    /// with ρ ≥ 2 the dedicated progress context (1), otherwise the only
    /// context (0). Mirrors the paper's two-context design (§III-D).
    pub fn target_ctx(&self) -> usize {
        if self.inner.cfg.contexts_per_rank >= 2 {
            1
        } else {
            0
        }
    }

    /// Total messages the interconnect has delivered.
    pub fn net_messages(&self) -> u64 {
        self.inner.net.borrow().messages()
    }

    /// Total payload bytes the interconnect has delivered.
    pub fn net_bytes(&self) -> u64 {
        self.inner.net.borrow().bytes()
    }

    /// Accumulated busy time per directed torus link (deterministically
    /// sorted). Populated under contention, or with
    /// [`MachineConfig::track_links`] on the analytic path.
    pub fn link_utilization(&self) -> Vec<(torus5d::Link, desim::SimDuration)> {
        self.inner.net.borrow().link_utilization()
    }

    /// Fold interconnect totals into the stats registry under `net.*` keys:
    /// `net.messages`, `net.bytes`, `net.links_used`, and a `net.link_busy_us`
    /// histogram of per-link busy time (µs). Call once, at the end of a run,
    /// before snapshotting.
    pub fn flush_net_stats(&self) {
        let stats = self.stats();
        let net = self.inner.net.borrow();
        stats.add("net.messages", net.messages());
        stats.add("net.bytes", net.bytes());
        let util = net.link_utilization();
        stats.add("net.links_used", util.len() as u64);
        for (_, busy) in &util {
            stats.record_hist("net.link_busy_us", busy.as_us() as u64);
        }
        // Fault accounting flushes only when a non-empty plan is installed,
        // so fault-free snapshots are byte-identical with or without the
        // fault hooks compiled in.
        if let Some(c) = net.fault_counters(self.inner.sim.now()) {
            stats.add("fault.link_down_ps", c.link_down_ps);
            stats.add("fault.link_down_events", c.link_down_events);
            stats.add("fault.drops", c.drops());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Sim;

    #[test]
    fn machine_construction() {
        let sim = Sim::new();
        let m = Machine::new(sim, MachineConfig::new(64).procs_per_node(16));
        assert_eq!(m.nprocs(), 64);
        assert_eq!(m.topology().shape.num_nodes(), 4);
        assert_eq!(m.target_ctx(), 0);
    }

    #[test]
    fn two_context_machine_routes_to_ctx1() {
        let sim = Sim::new();
        let m = Machine::new(sim, MachineConfig::new(4).contexts(2));
        assert_eq!(m.target_ctx(), 1);
    }

    #[test]
    fn rank_state_memory_grows_on_demand() {
        let rs = RankState::new(1);
        rs.write(100, &[1, 2, 3]);
        assert_eq!(rs.read(100, 3), vec![1, 2, 3]);
        assert_eq!(rs.read(4000, 2), vec![0, 0]); // untouched memory is zero
        rs.write_i64(200, -77);
        assert_eq!(rs.read_i64(200), -77);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let sim = Sim::new();
        let m = Machine::new(sim, MachineConfig::new(2));
        let _ = m.rank(2);
    }

    #[test]
    fn ranks_materialize_lazily() {
        let sim = Sim::new();
        let m = Machine::new(sim, MachineConfig::new(1 << 20));
        assert_eq!(m.materialized_count(), 0, "construction touches no rank");
        // Handles and space snapshots stay free.
        let _ = m.rank(999_999);
        assert_eq!(m.space(777_777).total(), 0);
        assert_eq!(m.materialized_count(), 0);
        // First real touch materializes exactly that rank.
        m.rank(42).write_i64(0, 7);
        assert_eq!(m.materialized_ranks(), vec![42]);
        assert_eq!(m.rank(42).read_i64(0), 7);
        assert_eq!(m.materialized_count(), 1);
    }

    #[test]
    fn rank_init_hook_runs_once_per_rank() {
        use std::cell::RefCell;
        let sim = Sim::new();
        let m = Machine::new(sim, MachineConfig::new(64));
        let seen: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = Rc::clone(&seen);
        m.set_rank_init(Rc::new(move |pr| {
            seen2.borrow_mut().push(pr.id());
            // Hooks may touch the rank they init without recursing.
            let _ = pr.alloc(8);
        }));
        m.rank(3).write_i64(0, 1);
        m.rank(3).write_i64(8, 2);
        m.materialize_rank(5);
        m.materialize_rank(5);
        assert_eq!(*seen.borrow(), vec![3, 5]);
    }
}
