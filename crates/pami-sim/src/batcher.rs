//! Per-destination active-message aggregation (the Lamellar-style batcher).
//!
//! When [`crate::MachineConfig::am_batching`] is configured, every
//! [`crate::PamiRank::send_am`] call lands here instead of posting its own
//! wire message: the AM is appended to a per-`(src, dst)` buffer for the
//! cost of a cache-resident copy ([`torus5d::BgqParams::am_enqueue`]), and
//! the buffer is flushed as **one** wire message when either
//!
//! * the buffer reaches the size threshold ([`AmBatchConfig::max_bytes`],
//!   flushed inline by the enqueueing task), or
//! * the flush window expires ([`AmBatchConfig::window`], a sim-time timer
//!   armed at the first enqueue into an empty buffer).
//!
//! Each source keeps at most one timer armed — a sweep that flushes every
//! buffer whose deadline has passed, in ascending destination order, then
//! re-arms for the earliest remaining deadline. Flush order is therefore
//! deterministic by `(deadline, dst)` regardless of enqueue interleaving.
//!
//! The coalesced message travels through [`crate::rank::deliver_then`] as an
//! `Ordered`-class payload, so pair-FIFO ordering, fault drops, retries and
//! `FailureMode` semantics all apply to a batch exactly as they do to any
//! other ordered message — and its landing event goes through
//! [`crate::Machine`]'s `schedule_leg`, so batched runs stay byte-identical
//! under `--workers N` via the reserved-sequence mailbox.
//!
//! Determinism: buffers are keyed by `BTreeMap<dst, _>` (sorted sweeps), the
//! sweep timer is armed only from deterministic sim events, and a source's
//! timer deadline is monotone (a new buffer's deadline `now + window` can
//! never undercut an armed one), so a single timer per source suffices.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use desim::memprof::{self, MemTag};
use desim::{OpId, SegCategory, SimDuration, SimTime};
use torus5d::MsgClass;

use crate::context::{AmEntry, WorkItem};
use crate::machine::Machine;

/// Aggregation buffers, pending entries and flush-timer closures.
static AM_TAG: MemTag = MemTag::new("pami.am");

/// Wire framing bytes per active message inside a coalesced batch
/// (dispatch id + header/payload lengths).
pub const AM_FRAME_BYTES: usize = 8;

/// Tuning of the per-destination aggregation buffer.
#[derive(Debug, Clone, Copy)]
pub struct AmBatchConfig {
    /// Flush a buffer as soon as its framed bytes reach this threshold.
    pub max_bytes: usize,
    /// Flush a buffer no later than this long after its first enqueue.
    pub window: SimDuration,
}

/// One AM waiting in an aggregation buffer.
pub(crate) struct PendAm {
    pub dispatch: u16,
    pub header: Vec<u8>,
    pub payload: Vec<u8>,
    /// When the AM entered the buffer (start of its aggregation wait).
    pub enqueued: SimTime,
    /// Operation the AM is attributed to, for flight segments.
    pub op: Option<OpId>,
}

/// A non-empty per-destination buffer.
struct DstBuf {
    entries: Vec<PendAm>,
    /// Framed bytes accumulated (headers + payloads + per-AM framing).
    bytes: usize,
    /// Window expiry: `first enqueue + window`.
    deadline: SimTime,
    /// Enqueue time of the oldest entry (equals the first enqueue).
    oldest: SimTime,
}

/// Per-source buffer set plus its single armed sweep timer.
struct SrcState {
    bufs: RefCell<BTreeMap<usize, DstBuf>>,
    /// Deadline the armed sweep timer fires at; `None` when no timer is
    /// armed (all buffers empty, or everything flushed by size).
    timer_at: Cell<Option<SimTime>>,
}

/// The machine-wide batcher: aggregation buffers for every source rank.
pub struct Batcher {
    cfg: AmBatchConfig,
    srcs: RefCell<desim::FxHashMap<usize, Rc<SrcState>>>,
    /// AMs currently waiting in some buffer (the `am.queue_depth` gauge).
    queued: Cell<i64>,
}

impl Batcher {
    pub(crate) fn new(cfg: AmBatchConfig) -> Batcher {
        assert!(cfg.max_bytes > 0, "need a nonzero size threshold");
        assert!(!cfg.window.is_zero(), "need a nonzero flush window");
        Batcher {
            cfg,
            srcs: RefCell::new(desim::FxHashMap::default()),
            queued: Cell::new(0),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> AmBatchConfig {
        self.cfg
    }

    /// AMs currently waiting in aggregation buffers (all sources).
    pub fn queued(&self) -> i64 {
        self.queued.get()
    }

    fn src_state(&self, src: usize) -> Rc<SrcState> {
        if let Some(ss) = self.srcs.borrow().get(&src) {
            return Rc::clone(ss);
        }
        let _mem = memprof::scope(&AM_TAG);
        let ss = Rc::new(SrcState {
            bufs: RefCell::new(BTreeMap::new()),
            timer_at: Cell::new(None),
        });
        self.srcs.borrow_mut().insert(src, Rc::clone(&ss));
        ss
    }

    /// Append one AM to the `(src, dst)` buffer, flushing inline when the
    /// size threshold trips, otherwise making sure a window timer is armed.
    pub(crate) fn enqueue(&self, m: &Machine, src: usize, dst: usize, pend: PendAm) {
        let now = m.sim().now();
        let ss = self.src_state(src);
        let framed = pend.header.len() + pend.payload.len() + AM_FRAME_BYTES;
        let size_trip = {
            let _mem = memprof::scope(&AM_TAG);
            let mut bufs = ss.bufs.borrow_mut();
            let buf = bufs.entry(dst).or_insert_with(|| DstBuf {
                entries: Vec::new(),
                bytes: 0,
                deadline: now + self.cfg.window,
                oldest: now,
            });
            buf.entries.push(pend);
            buf.bytes += framed;
            buf.bytes >= self.cfg.max_bytes
        };
        self.queued.set(self.queued.get() + 1);
        if let Some(am) = m.am_tl() {
            let tl = m.sim().timeline();
            tl.add(am.sent, now, 1);
            tl.gauge(am.queue_depth, now, self.queued.get());
        }
        if size_trip {
            self.flush_pair(m, src, dst, now);
        } else if ss.timer_at.get().is_none() {
            // First pending buffer for this source: arm the sweep. A later
            // enqueue can only add deadlines >= the armed one, so one timer
            // per source is always enough.
            self.arm_timer(m, src, &ss, now + self.cfg.window);
        }
    }

    fn arm_timer(&self, m: &Machine, src: usize, ss: &Rc<SrcState>, at: SimTime) {
        ss.timer_at.set(Some(at));
        let m2 = m.clone();
        let _mem = memprof::scope(&AM_TAG);
        m.sim().schedule(at, move || {
            if let Some(b) = m2.batcher() {
                b.sweep(&m2, src, at);
            }
        });
    }

    /// Window-timer body: flush every buffer of `src` whose deadline has
    /// passed (ascending destination order), then re-arm for the earliest
    /// remaining deadline. A spurious firing (everything already flushed by
    /// size) just re-arms or goes idle.
    fn sweep(&self, m: &Machine, src: usize, now: SimTime) {
        let ss = self.src_state(src);
        ss.timer_at.set(None);
        let due: Vec<usize> = ss
            .bufs
            .borrow()
            .iter()
            .filter(|(_, b)| b.deadline <= now)
            .map(|(&d, _)| d)
            .collect();
        for dst in due {
            self.flush_pair(m, src, dst, now);
        }
        let next = ss.bufs.borrow().values().map(|b| b.deadline).min();
        if let Some(next) = next {
            self.arm_timer(m, src, &ss, next);
        }
    }

    /// Flush the `(src, dst)` buffer now, if it has anything pending. Public
    /// so upper layers can force ordering points (e.g. an AM fence) without
    /// waiting out the window.
    pub fn flush_pair(&self, m: &Machine, src: usize, dst: usize, now: SimTime) {
        let buf = {
            let ss = self.src_state(src);
            let removed = ss.bufs.borrow_mut().remove(&dst);
            removed
        };
        if let Some(buf) = buf {
            self.flush_buf(m, src, dst, buf, now);
        }
    }

    /// Ship one buffer as a single `Ordered` wire message that lands as a
    /// [`WorkItem::AmBatch`] on the destination's target context.
    fn flush_buf(&self, m: &Machine, src: usize, dst: usize, buf: DstBuf, now: SimTime) {
        let _mem = memprof::scope(&AM_TAG);
        let p = m.params();
        let stats = m.stats();
        let n = buf.entries.len();
        let wire = buf.bytes + p.am_header_bytes;
        stats.incr("am.flushes");
        stats.incr("am.wire_msgs");
        stats.add("am.bytes", wire as u64);
        stats.record_hist("am.batch_size", n as u64);
        if n > 1 {
            stats.incr("am.batches");
        }
        self.queued.set(self.queued.get() - n as i64);
        if let Some(am) = m.am_tl() {
            let tl = m.sim().timeline();
            tl.add(am.flushes, now, 1);
            tl.add(am.wire_msgs, now, 1);
            tl.add(am.bytes, now, wire as u64);
            if n > 1 {
                tl.add(am.batches, now, 1);
            }
            tl.gauge(am.queue_depth, now, self.queued.get());
            tl.gauge(am.oldest_wait, now, now.since(buf.oldest).as_ps() as i64);
        }
        // Attribute each AM's time in the buffer: queueing the critpath can
        // see (the cost side of the batching trade).
        let fl = m.sim().flight();
        if fl.on() {
            for e in &buf.entries {
                if let Some(op) = e.op {
                    fl.segment(op, SegCategory::Queueing, "pami.am_aggr", e.enqueued, now);
                }
            }
        }
        let op = buf.entries[0].op;
        let entries: Vec<AmEntry> = buf
            .entries
            .into_iter()
            .map(|e| AmEntry {
                dispatch: e.dispatch,
                header: e.header,
                payload: e.payload,
            })
            .collect();
        // One NIC post for the whole batch, then the ordinary reliable
        // ordered delivery path (faults, retries, pair FIFO, shard mailbox).
        let inject = now + p.o_send;
        let m2 = m.clone();
        crate::rank::deliver_then(
            m,
            inject,
            src,
            dst,
            wire,
            MsgClass::Ordered,
            op,
            SimDuration::ZERO,
            0,
            Box::new(move |arrival, delivered| {
                if delivered {
                    crate::rank::enqueue_at_target(
                        &m2,
                        dst,
                        arrival,
                        WorkItem::AmBatch { src, entries },
                        op,
                    );
                }
            }),
        );
    }
}
