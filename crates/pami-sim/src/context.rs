//! PAMI communication contexts and the work items they service.
//!
//! A context is a *threading point*: remote requests that need target-CPU
//! involvement (software puts/gets, atomic memory operations, active
//! messages) are enqueued on a target context and executed only when some
//! task at the target drives the progress engine ([`crate::PamiRank::advance`]).
//! The context lock models the mutual exclusion between the main thread and
//! the asynchronous progress thread when they share one context (ρ = 1).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use desim::memprof::{self, MemTag};
use desim::sync::{Notify, SimMutex};
use desim::{Completion, OpId, SimTime};

/// Context work queues and dispatch tables.
static QUEUES_TAG: MemTag = MemTag::new("pami.queues");

/// Atomic read-modify-write operations (paper §III-D).
///
/// PAMI on BG/Q lacks NIC support for generic AMOs, so every variant is
/// serviced by target-side software — the very limitation the asynchronous
/// thread design addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// Atomically add and return the previous value (load-balance counters).
    FetchAdd(i64),
    /// Atomically replace and return the previous value.
    Swap(i64),
    /// Compare-and-swap: store `swap` if the current value equals `compare`;
    /// returns the previous value either way.
    CompareSwap {
        /// Expected current value.
        compare: i64,
        /// Replacement value on match.
        swap: i64,
    },
}

/// A user-registered active-message handler, executed at the target during
/// progress. Handlers receive the machine handle and may issue further
/// communication (e.g. the fall-back get replies with a put).
pub type AmHandler = Rc<dyn Fn(AmEnv, AmMsg)>;

/// Target-side environment passed to an active-message handler.
pub struct AmEnv {
    /// The machine the handler runs on.
    pub machine: crate::Machine,
    /// Rank executing the handler (the message target).
    pub rank: usize,
}

/// An active message as seen by its handler.
pub struct AmMsg {
    /// Originating rank.
    pub src: usize,
    /// Small immediate header.
    pub header: Vec<u8>,
    /// Bulk payload.
    pub payload: Vec<u8>,
}

/// One active message inside a coalesced [`WorkItem::AmBatch`] wire message.
pub struct AmEntry {
    /// Handler registry key.
    pub dispatch: u16,
    /// Small immediate header.
    pub header: Vec<u8>,
    /// Bulk payload.
    pub payload: Vec<u8>,
}

/// A unit of target-side work queued on a context.
pub enum WorkItem {
    /// Software (non-RDMA) put: payload written to memory at service time.
    SwPut {
        /// Originating rank.
        src: usize,
        /// Destination offset in the target's memory.
        offset: usize,
        /// Bytes to store.
        data: Vec<u8>,
        /// Completed once the data is globally visible at the target.
        remote_done: Completion<()>,
    },
    /// Software (non-RDMA) get request: target reads and replies.
    SwGet {
        /// Originating rank (reply destination).
        src: usize,
        /// Source offset in the target's memory.
        offset: usize,
        /// Bytes requested.
        len: usize,
        /// Destination offset in the *requester's* memory.
        local_off: usize,
        /// Completed at the requester once the reply lands.
        done: Completion<()>,
    },
    /// Atomic read-modify-write on an 8-byte integer.
    Rmw {
        /// Originating rank (reply destination).
        src: usize,
        /// Offset of the i64 in the target's memory.
        offset: usize,
        /// The operation.
        op: RmwOp,
        /// Completed at the requester with the previous value.
        done: Completion<i64>,
    },
    /// Accumulate: `dst[i] += scale * src[i]` over f64 elements.
    AccF64 {
        /// Originating rank.
        src: usize,
        /// Destination offset in the target's memory (f64-aligned).
        offset: usize,
        /// Scale factor applied to the incoming data.
        scale: f64,
        /// Incoming f64s as raw little-endian bytes.
        data: Vec<u8>,
        /// Completed once the update is applied.
        remote_done: Completion<()>,
    },
    /// Packed (typed-datatype) strided get: the target CPU gathers the
    /// described chunks into one bulk reply (used for tall-skinny strided
    /// transfers where per-chunk RDMA would drown in per-chunk overhead).
    PackedGet {
        /// Originating rank (reply destination).
        src: usize,
        /// `(offset, len)` chunks to gather from the target's memory.
        chunks: Vec<(usize, usize)>,
        /// `(offset, len)` chunks to scatter into at the requester.
        local_chunks: Vec<(usize, usize)>,
        /// Completed at the requester once the reply is unpacked.
        done: Completion<()>,
    },
    /// Packed (typed-datatype) strided put: one bulk message the target CPU
    /// scatters into the described chunks.
    PackedPut {
        /// Originating rank.
        src: usize,
        /// Packed payload (concatenation of the chunks).
        data: Vec<u8>,
        /// `(offset, len)` chunks to scatter into at the target.
        chunks: Vec<(usize, usize)>,
        /// Completed once the scatter is applied.
        remote_done: Completion<()>,
    },
    /// Packed strided accumulate: the target CPU scatters
    /// `dst[i] += scale·src[i]` into the described chunks.
    AccStrided {
        /// Originating rank.
        src: usize,
        /// Packed f64 payload (concatenation of the chunks).
        data: Vec<u8>,
        /// `(offset, len)` chunks to accumulate into at the target.
        chunks: Vec<(usize, usize)>,
        /// Scale factor applied to incoming data.
        scale: f64,
        /// Completed once the update is applied.
        remote_done: Completion<()>,
    },
    /// A user active message dispatched to a registered handler.
    Am {
        /// Originating rank.
        src: usize,
        /// Handler registry key.
        dispatch: u16,
        /// Small immediate header.
        header: Vec<u8>,
        /// Bulk payload.
        payload: Vec<u8>,
    },
    /// A coalesced wire message carrying several active messages for the
    /// same destination (produced by the per-destination aggregation buffer,
    /// [`crate::batcher`]). The entries are dispatched in order; the batch
    /// paid one dispatch/NIC-post overhead for all of them.
    AmBatch {
        /// Originating rank (one buffer per `(src, dst)` pair).
        src: usize,
        /// The coalesced messages, in enqueue order.
        entries: Vec<AmEntry>,
    },
}

impl WorkItem {
    /// Stable trace-span name for this kind of work (`pami.service.*`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            WorkItem::SwPut { .. } => "pami.service.sw_put",
            WorkItem::SwGet { .. } => "pami.service.sw_get",
            WorkItem::Rmw { .. } => "pami.service.rmw",
            WorkItem::AccF64 { .. } => "pami.service.acc",
            WorkItem::PackedGet { .. } => "pami.service.packed_get",
            WorkItem::PackedPut { .. } => "pami.service.packed_put",
            WorkItem::AccStrided { .. } => "pami.service.acc_strided",
            WorkItem::Am { .. } => "pami.service.am",
            WorkItem::AmBatch { .. } => "pami.service.am_batch",
        }
    }

    /// Rank that originated this work item.
    pub fn src(&self) -> usize {
        match self {
            WorkItem::SwPut { src, .. }
            | WorkItem::SwGet { src, .. }
            | WorkItem::Rmw { src, .. }
            | WorkItem::AccF64 { src, .. }
            | WorkItem::PackedGet { src, .. }
            | WorkItem::PackedPut { src, .. }
            | WorkItem::AccStrided { src, .. }
            | WorkItem::Am { src, .. }
            | WorkItem::AmBatch { src, .. } => *src,
        }
    }
}

/// A [`WorkItem`] sitting in a context queue, together with the lifecycle
/// metadata the flight recorder needs: the originating [`OpId`] (if the
/// issuing rank was attributing) and the arrival time, from which the
/// queueing / progress-starvation split is computed at service time.
pub struct Queued {
    /// The work itself.
    pub item: WorkItem,
    /// Operation this work belongs to, when flight recording is on.
    pub op: Option<OpId>,
    /// When the request arrived at the target context.
    pub enqueued: SimTime,
}

/// State of one communication context.
pub struct CtxState {
    /// Arrived-but-unserviced work.
    pub queue: RefCell<VecDeque<Queued>>,
    /// Signalled whenever work arrives (wakes the async progress thread).
    pub arrived: Notify,
    /// The progress-engine lock guarding `advance`.
    pub lock: SimMutex,
    /// Registered active-message handlers.
    pub dispatch: RefCell<HashMap<u16, AmHandler>>,
    /// Items serviced over the context's lifetime.
    pub serviced: Cell<u64>,
    /// High-water mark of the queue depth.
    pub max_depth: Cell<usize>,
    /// Since when *someone* (a blocking call or the async progress thread)
    /// has been continuously driving this context's progress engine; `None`
    /// while nobody is. Queue time before this instant is **progress
    /// starvation** (§III-D); queue time after it is ordinary queueing behind
    /// the active service batch.
    pub progress_since: Cell<Option<SimTime>>,
}

impl CtxState {
    /// Create an idle context.
    pub fn new() -> CtxState {
        let _mem = memprof::scope(&QUEUES_TAG);
        CtxState {
            queue: RefCell::new(VecDeque::new()),
            arrived: Notify::new(),
            lock: SimMutex::new(),
            dispatch: RefCell::new(HashMap::new()),
            serviced: Cell::new(0),
            max_depth: Cell::new(0),
            progress_since: Cell::new(None),
        }
    }

    /// Enqueue arrived work and signal the progress thread.
    pub fn push(&self, item: WorkItem, op: Option<OpId>, enqueued: SimTime) {
        let _mem = memprof::scope(&QUEUES_TAG);
        let depth = {
            let mut q = self.queue.borrow_mut();
            q.push_back(Queued { item, op, enqueued });
            q.len()
        };
        if depth > self.max_depth.get() {
            self.max_depth.set(depth);
        }
        self.arrived.notify_all();
    }

    /// Number of queued items.
    pub fn depth(&self) -> usize {
        self.queue.borrow().len()
    }
}

impl Default for CtxState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_depth_and_highwater() {
        let c = CtxState::new();
        assert_eq!(c.depth(), 0);
        for i in 0..3 {
            c.push(
                WorkItem::Rmw {
                    src: 0,
                    offset: 0,
                    op: RmwOp::FetchAdd(1),
                    done: Completion::new(),
                },
                None,
                SimTime::ZERO,
            );
            assert_eq!(c.depth(), i + 1);
        }
        assert_eq!(c.max_depth.get(), 3);
        c.queue.borrow_mut().pop_front();
        assert_eq!(c.depth(), 2);
        assert_eq!(c.max_depth.get(), 3);
    }
}
