//! The active-message surface: machine-wide dispatch registration and the
//! batchable [`PamiRank::send_am`] entry point.
//!
//! Modeled on the paper's PAMI send/dispatch objects (§III-A2): a sender
//! names a **dispatch id**, the destination runs the registered handler in
//! sim time during progress, and the handler may reply with a response AM
//! ([`AmEnv::reply`]). Two registries exist:
//!
//! * [`PamiRank::register_dispatch`] — per-rank, per-context (the original
//!   surface; consulted first, so existing users are unaffected);
//! * [`Machine::register_am`] — machine-wide, consulted on a per-context
//!   miss. Upper layers with uniform handlers (every rank runs the same
//!   code) register once instead of burning per-rank table memory.
//!
//! Delivery: with no batcher configured, [`PamiRank::send_am`] posts one
//! `Ordered`-class wire message per AM — the untouched hot path, one
//! `Option` check away from the pre-AM code. With
//! [`crate::MachineConfig::am_batching`] configured, the AM is appended to
//! the per-destination aggregation buffer (see [`crate::batcher`]) for
//! [`torus5d::BgqParams::am_enqueue`] — the wire message, NIC post and
//! dispatch overheads are paid once per *batch* instead of once per AM.
//!
//! `send_am` traffic is `Ordered` (pair-FIFO through the data FIFO), unlike
//! the legacy [`PamiRank::am_send`] which rides the `Control` channel: a
//! batch must not overtake or be overtaken by other batches to the same
//! destination, and the unbatched path uses the same class so the two are
//! directly comparable.

use std::rc::Rc;

use desim::{Completion, SimDuration};
use torus5d::MsgClass;

use crate::batcher::PendAm;
use crate::context::{AmHandler, WorkItem};
use crate::machine::Machine;
use crate::rank::PamiRank;

impl Machine {
    /// Register a machine-wide active-message handler under `dispatch`.
    /// Consulted when a destination's per-context table has no entry for the
    /// id; registering the same id again replaces the old handler. (Charged
    /// to the caller's memprof scope, not `pami.am`: the table exists even
    /// when aggregation is off, and the `pami.am` tag tracks only the
    /// batcher so the tag's absence certifies the zero-cost path.)
    pub fn register_am(&self, dispatch: u16, handler: AmHandler) {
        self.inner
            .am_handlers
            .borrow_mut()
            .insert(dispatch, handler);
    }

    /// Look up a machine-wide handler.
    pub(crate) fn am_handler(&self, dispatch: u16) -> Option<AmHandler> {
        self.inner.am_handlers.borrow().get(&dispatch).cloned()
    }

    /// The aggregation batcher, `Some` only when
    /// [`crate::MachineConfig::am_batching`] was configured.
    pub fn batcher(&self) -> Option<Rc<crate::batcher::Batcher>> {
        self.inner.batcher.clone()
    }

    /// Force the `(src, dst)` aggregation buffer out **now** (no-op without
    /// a batcher, or when the buffer is empty). An ordering point: every AM
    /// already enqueued for `dst` is on the wire, ahead of anything sent
    /// later, so a subsequent round-trip AM fences the pair.
    pub fn am_flush_pair(&self, src: usize, dst: usize) {
        if let Some(b) = self.batcher() {
            b.flush_pair(self, src, dst, self.sim().now());
        }
    }
}

impl PamiRank {
    /// Send an active message to the handler registered under `dispatch` at
    /// `target` (per-context table first, then the machine-wide table). The
    /// returned completion covers *local* send completion: the AM is on the
    /// wire, or safely parked in the aggregation buffer.
    pub async fn send_am(
        &self,
        target: usize,
        dispatch: u16,
        header: Vec<u8>,
        payload: Vec<u8>,
    ) -> Completion<()> {
        let sim = self.m.sim();
        let p = self.m.params();
        let stats = self.m.stats();
        stats.incr("am.sent");
        let done = Completion::new();
        if let Some(b) = self.m.batcher() {
            // Batched path: pay a buffer append (cache-resident copy), not a
            // NIC post. The flush pays the post once for the whole batch.
            let bytes = header.len() + payload.len();
            sim.sleep(p.am_enqueue + SimDuration::from_ps(bytes as u64 * p.pack_byte_time_ps))
                .await;
            let op = self.current_op();
            b.enqueue(
                &self.m,
                self.r,
                target,
                PendAm {
                    dispatch,
                    header,
                    payload,
                    enqueued: sim.now(),
                    op,
                },
            );
            done.complete(());
            return done;
        }
        // Unbatched hot path: one NIC post + one wire message per AM,
        // structurally identical to the legacy `am_send` but Ordered-class.
        let op = self.current_op();
        sim.sleep(p.o_send).await;
        let wire = header.len() + payload.len() + p.am_header_bytes;
        stats.incr("am.wire_msgs");
        stats.add("am.bytes", wire as u64);
        let (arrival, delivered) = self
            .deliver_reliable(sim.now(), target, wire, MsgClass::Ordered, op)
            .await;
        done.complete(());
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::Am {
                    src: self.r,
                    dispatch,
                    header,
                    payload,
                },
                op,
            );
        }
        done
    }
}

impl crate::context::AmEnv {
    /// Reply to an AM's originator with a response AM (the PAMI
    /// send-from-dispatch pattern). Spawned as a task on the handling rank;
    /// goes through [`PamiRank::send_am`], so replies batch too when a
    /// batcher is configured.
    pub fn reply(&self, to: usize, dispatch: u16, header: Vec<u8>, payload: Vec<u8>) {
        let responder = self.machine.rank(self.rank);
        self.machine.sim().spawn(async move {
            responder.send_am(to, dispatch, header, payload).await;
        });
    }
}
