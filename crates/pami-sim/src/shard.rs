//! Rank→shard partitioning and the window-boundary mailbox of the
//! conservative parallel mode.
//!
//! When a machine is configured with `workers > 1`, its ranks are block-
//! partitioned across that many shards ([`ShardMap`]). Network legs whose
//! source and destination ranks live on *different* shards are not scheduled
//! directly: they are posted to a [`Shards`] mailbox keyed by the lookahead
//! window boundary `⌊arrival/Δ⌋·Δ`, where `Δ` is the minimum cross-shard
//! latency (`min(intranode, base + hop)` — a shard boundary may split a
//! node, so the intranode latency bounds the lookahead too). A pump timer at
//! each boundary drains the bucket into the kernel wheel.
//!
//! The exchange is exactly the barrier protocol a multi-worker
//! [`desim::ParSim`] run performs between windows, executed here inside one
//! kernel so the *event order* is provably unchanged: every post reserves a
//! kernel sequence number at post time ([`desim::Sim::reserve_seq`]) — the
//! very number a direct `schedule` call would have consumed — and the pump
//! re-inserts the deferred callback under that reserved number
//! ([`desim::Sim::schedule_reserved`]). The pump's own timer shifts later
//! sequence numbers by one but never permutes their relative order, so every
//! `(time, seq)` tie-break resolves exactly as in the serial engine and all
//! simulation outputs stay byte-identical for any worker count.
//!
//! Safety of the deferral: a leg posted at time `t` arrives at
//! `at ≥ t + Δ`, hence its boundary `b = ⌊at/Δ⌋·Δ > at − Δ ≥ t` lies
//! strictly in the future — the pump can always still be scheduled, and it
//! fires no later than the arrival itself.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use desim::memprof::{self, MemTag};
use desim::{FxHashMap, Sim, SimTime};
use torus5d::BgqParams;

/// Deferred cross-shard callbacks parked in window-boundary buckets.
static MAIL_TAG: MemTag = MemTag::new("pami.mail");

/// Block partition of `nprocs` ranks over `workers` shards: rank `r` lives
/// on shard `r·workers/nprocs`, so shards own contiguous, near-equal rank
/// ranges and the map needs no per-rank storage (it composes with the lazy
/// `Machine::rank_state` materialization — untouched ranks cost
/// nothing in any shard).
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    nprocs: usize,
    workers: usize,
}

impl ShardMap {
    /// Map `nprocs` ranks onto `workers` shards.
    pub fn new(nprocs: usize, workers: usize) -> ShardMap {
        assert!(nprocs >= 1 && workers >= 1);
        ShardMap { nprocs, workers }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shard owning `rank`.
    pub fn shard_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.nprocs);
        rank * self.workers / self.nprocs
    }

    /// True when the two ranks live on different shards (the leg between
    /// them must cross a window boundary).
    pub fn cross(&self, a: usize, b: usize) -> bool {
        self.shard_of(a) != self.shard_of(b)
    }
}

struct MailEntry {
    at_ps: u64,
    seq: u64,
    run: Box<dyn FnOnce()>,
}

/// The machine's shard table plus the window-boundary mailbox. Built once in
/// [`crate::Machine::new`] when `workers > 1` and no fault plan is active
/// (faults pin the machine to the serial path, mirroring the network batch
/// engine's gating).
pub struct Shards {
    /// Rank→shard assignment.
    pub map: ShardMap,
    /// Lookahead window width Δ in picoseconds.
    delta_ps: u64,
    /// Pending cross-shard legs, keyed by window boundary `⌊at/Δ⌋·Δ`.
    buckets: RefCell<FxHashMap<u64, Vec<MailEntry>>>,
    /// Total legs posted through the mailbox.
    posted: Cell<u64>,
    /// Window boundaries that received at least one leg (= pump timers).
    windows: Cell<u64>,
}

impl Shards {
    /// Build the shard table for `nprocs` ranks over `workers` shards with
    /// the lookahead window derived from `params`.
    pub fn new(nprocs: usize, workers: usize, params: &BgqParams) -> Shards {
        let delta = params
            .intranode_latency
            .min(params.base_latency + params.hop_latency);
        let delta_ps = delta.as_ps();
        assert!(
            delta_ps > 0,
            "cost model admits zero-latency legs: no lookahead"
        );
        Shards {
            map: ShardMap::new(nprocs, workers),
            delta_ps,
            buckets: RefCell::new(FxHashMap::default()),
            posted: Cell::new(0),
            windows: Cell::new(0),
        }
    }

    /// Lookahead window width in picoseconds.
    pub fn delta_ps(&self) -> u64 {
        self.delta_ps
    }

    /// `(legs posted, windows pumped)` so far. Diagnostic only — never
    /// folded into [`desim::Stats`], which must stay workers-invariant.
    pub fn counters(&self) -> (u64, u64) {
        (self.posted.get(), self.windows.get())
    }

    /// Park a cross-shard leg due at `at`, reserving its kernel sequence
    /// number now. The first post into a window boundary schedules the pump
    /// *before* the reservation, so the pump's `(boundary, seq)` precedes
    /// every entry it will re-insert and the drain can never run after an
    /// entry's own due point.
    pub fn post(self: &Rc<Self>, sim: &Sim, at: SimTime, run: Box<dyn FnOnce()>) {
        let now = sim.now().as_ps();
        let boundary = (at.as_ps() / self.delta_ps) * self.delta_ps;
        assert!(
            boundary > now,
            "cross-shard leg at t={} ps lands inside the current window \
             (boundary {} ps, now {} ps): lookahead Δ={} ps violated",
            at.as_ps(),
            boundary,
            now,
            self.delta_ps
        );
        let is_new = !self.buckets.borrow().contains_key(&boundary);
        if is_new {
            let sh = Rc::clone(self);
            let sim2 = sim.clone();
            self.windows.set(self.windows.get() + 1);
            sim.schedule(SimTime(boundary), move || sh.pump(&sim2, boundary));
        }
        let seq = sim.reserve_seq();
        self.posted.set(self.posted.get() + 1);
        let _mem = memprof::scope(&MAIL_TAG);
        self.buckets
            .borrow_mut()
            .entry(boundary)
            .or_default()
            .push(MailEntry {
                at_ps: at.as_ps(),
                seq,
                run,
            });
    }

    /// Drain one boundary's bucket into the kernel wheel under the reserved
    /// sequence numbers. Runs as the pump timer at exactly `boundary`.
    fn pump(&self, sim: &Sim, boundary: u64) {
        let entries = self
            .buckets
            .borrow_mut()
            .remove(&boundary)
            .expect("pump fired for an empty boundary");
        for e in entries {
            sim.schedule_reserved(SimTime(e.at_ps), e.seq, e.run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_covers_all_shards_contiguously() {
        let map = ShardMap::new(10, 4);
        let shards: Vec<usize> = (0..10).map(|r| map.shard_of(r)).collect();
        assert_eq!(shards, vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
        assert!(map.cross(2, 3));
        assert!(!map.cross(0, 2));
        // More shards than ranks: every rank still gets a valid shard.
        let tiny = ShardMap::new(2, 4);
        assert_eq!(tiny.shard_of(0), 0);
        assert_eq!(tiny.shard_of(1), 2);
    }

    #[test]
    fn mailbox_preserves_tie_break_order() {
        // Two legs posted through the mailbox interleaved with two direct
        // schedules at the *same* arrival time must execute in post order —
        // exactly as four direct schedules would.
        let sim = Sim::new();
        let sh = Rc::new(Shards::new(8, 2, &BgqParams::default()));
        let delta = sh.delta_ps();
        let at = SimTime(3 * delta); // on-boundary arrival: worst case
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2, l3, l4) = (log.clone(), log.clone(), log.clone(), log.clone());
        sh.post(&sim, at, Box::new(move || l1.borrow_mut().push("mail-a")));
        sim.schedule(at, move || l2.borrow_mut().push("direct-a"));
        sh.post(&sim, at, Box::new(move || l3.borrow_mut().push("mail-b")));
        sim.schedule(at, move || l4.borrow_mut().push("direct-b"));
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec!["mail-a", "direct-a", "mail-b", "direct-b"]
        );
        assert_eq!(sh.counters(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn post_inside_current_window_panics() {
        let sim = Sim::new();
        let sh = Rc::new(Shards::new(8, 2, &BgqParams::default()));
        // An arrival inside the current window has no future boundary.
        sh.post(&sim, SimTime(1), Box::new(|| {}));
    }
}
