//! Per-rank space accounting for PAMI objects.
//!
//! The paper models memory consumption of the communication subsystem with
//! Eqs. (1)–(6): contexts (`M_c = ε·ρ`), endpoints (`M_e = ζ·α·ρ`) and memory
//! regions (`M_r = τ·γ + σ·ζ·γ`). This module tracks the actual bytes the
//! simulated runtime allocates per category so tests can validate those
//! equations against the implementation.

use std::cell::Cell;

/// Byte counters for one rank's PAMI objects.
#[derive(Debug, Default)]
pub struct SpaceAccount {
    contexts: Cell<usize>,
    endpoints: Cell<usize>,
    regions: Cell<usize>,
    buffers: Cell<usize>,
}

/// An immutable snapshot of a [`SpaceAccount`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpaceSnapshot {
    /// Bytes consumed by communication contexts (ε each).
    pub contexts: usize,
    /// Bytes consumed by cached endpoints (α each).
    pub endpoints: usize,
    /// Bytes consumed by memory-region metadata (γ each).
    pub regions: usize,
    /// Bytes consumed by communication buffers.
    pub buffers: usize,
}

impl SpaceSnapshot {
    /// Total bytes across all categories.
    pub fn total(&self) -> usize {
        self.contexts + self.endpoints + self.regions + self.buffers
    }
}

impl SpaceAccount {
    /// Record context metadata bytes.
    pub fn add_context(&self, bytes: usize) {
        self.contexts.set(self.contexts.get() + bytes);
    }

    /// Record endpoint metadata bytes.
    pub fn add_endpoint(&self, bytes: usize) {
        self.endpoints.set(self.endpoints.get() + bytes);
    }

    /// Record memory-region metadata bytes.
    pub fn add_region(&self, bytes: usize) {
        self.regions.set(self.regions.get() + bytes);
    }

    /// Release memory-region metadata bytes (cache eviction).
    pub fn sub_region(&self, bytes: usize) {
        self.regions.set(self.regions.get().saturating_sub(bytes));
    }

    /// Record communication-buffer bytes.
    pub fn add_buffer(&self, bytes: usize) {
        self.buffers.set(self.buffers.get() + bytes);
    }

    /// Snapshot the current counters.
    pub fn snapshot(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            contexts: self.contexts.get(),
            endpoints: self.endpoints.get(),
            regions: self.regions.get(),
            buffers: self.buffers.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let a = SpaceAccount::default();
        a.add_context(16384);
        a.add_endpoint(4);
        a.add_endpoint(4);
        a.add_region(8);
        a.add_buffer(1024);
        let s = a.snapshot();
        assert_eq!(s.contexts, 16384);
        assert_eq!(s.endpoints, 8);
        assert_eq!(s.regions, 8);
        assert_eq!(s.buffers, 1024);
        assert_eq!(s.total(), 16384 + 8 + 8 + 1024);
    }

    #[test]
    fn region_release() {
        let a = SpaceAccount::default();
        a.add_region(8);
        a.add_region(8);
        a.sub_region(8);
        assert_eq!(a.snapshot().regions, 8);
        a.sub_region(100); // saturates
        assert_eq!(a.snapshot().regions, 0);
    }
}
