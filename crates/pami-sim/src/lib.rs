#![warn(missing_docs)]
//! # pami-sim — a PAMI-like messaging layer on a simulated Blue Gene/Q
//!
//! Models IBM's Parallel Active Messaging Interface (PAMI) as described in
//! the paper (§III-A) and by Kumar et al.: clients/contexts/endpoints/memory
//! regions as first-class objects with the measured creation costs of
//! Table II, active messages with dispatch tables, RMA put/get with true
//! RDMA (no target-CPU involvement) plus software variants that require the
//! target's progress engine, and read-modify-write operations that — as on
//! the real BG/Q NIC — have **no hardware support** and are serviced by
//! target-side software.
//!
//! Semantics preserved from the real interface:
//!
//! * deterministic dimension-ordered routing ⇒ pairwise FIFO for ordered
//!   traffic; AMOs are unordered (§III-A4);
//! * RDMA operations progress without the target CPU (Eq. 7); the software
//!   path queues work on a target context until *someone* calls `advance`
//!   (Eq. 8 and the entire §III-D motivation);
//! * the progress engine is lock-guarded per context: a main thread and an
//!   asynchronous progress thread sharing one context (ρ = 1) contend, two
//!   contexts (ρ = 2) progress independently.
//!
//! ```
//! use desim::Sim;
//! use pami_sim::{Machine, MachineConfig};
//!
//! let sim = Sim::new();
//! let m = Machine::new(sim.clone(), MachineConfig::new(2));
//! let (a, b) = (m.rank(0), m.rank(1));
//! let src = a.alloc(8);
//! let dst = b.alloc(8);
//! a.write_i64(src, 42);
//! sim.spawn(async move {
//!     let h = a.rdma_put(1, src, dst, 8).await;
//!     h.remote.wait().await;
//!     assert_eq!(b.read_i64(dst), 42);
//! });
//! sim.run();
//! ```

pub mod am;
pub mod batcher;
pub mod context;
pub mod machine;
pub mod rank;
pub mod retry;
pub mod shard;
pub mod space;

pub use batcher::{AmBatchConfig, Batcher, AM_FRAME_BYTES};
pub use context::{AmEntry, AmEnv, AmHandler, AmMsg, CtxState, RmwOp, WorkItem};
pub use machine::{Machine, MachineConfig, RegionError, RegionId};
pub use rank::{AsyncThread, PamiRank, PutHandles};
pub use retry::{FailureMode, RetryPolicy};
pub use shard::{ShardMap, Shards};
pub use space::{SpaceAccount, SpaceSnapshot};
