//! Per-rank PAMI operations: memory, regions, endpoints, RMA, AMOs, AM and
//! the progress engine.

use std::rc::Rc;

use desim::futures::{race, Either};
use desim::memprof::{self, MemTag};
use desim::{Completion, OpId, SegCategory, SimDuration, SimTime};

/// Scheduled-but-unsent retransmit state (boxed retry continuations).
static RETRY_TAG: MemTag = MemTag::new("pami.retry");
use torus5d::{Delivery, MsgClass};

use crate::context::{AmEnv, AmHandler, AmMsg, CtxState, RmwOp, WorkItem};
use crate::machine::{Machine, Region, RegionError, RegionId};
use crate::retry::FailureMode;

/// Completions returned by a put-style operation.
#[derive(Clone)]
pub struct PutHandles {
    /// Source buffer is reusable (MPI-style buffer-reuse semantics).
    pub local: Completion<()>,
    /// Data is globally visible at the target (what `fence` waits on).
    pub remote: Completion<()>,
}

/// Handle to a running asynchronous progress thread.
pub struct AsyncThread {
    stop: Completion<()>,
}

impl AsyncThread {
    /// Ask the thread to exit at its next wake-up.
    pub fn stop(&self) {
        if !self.stop.is_complete() {
            self.stop.complete(());
        }
    }
}

/// Deliver one network leg from a scheduled (non-async) closure — response
/// legs of get/rmw-style operations — retrying per the machine's
/// [`crate::RetryPolicy`] when the fault layer drops it, then invoke
/// `then(arrival, delivered)` as an event at `arrival + extra`. Without an
/// active fault plan this is exactly one `deliver_op` plus one `schedule`,
/// so fault-free event streams are unchanged. Retries recurse through
/// scheduled closures rather than awaiting, so the target's progress engine
/// keeps running while a reply waits out its backoff.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver_then(
    m: &Machine,
    inject: SimTime,
    src: usize,
    dst: usize,
    payload: usize,
    class: MsgClass,
    op: Option<OpId>,
    extra: SimDuration,
    attempt: u32,
    then: Box<dyn FnOnce(SimTime, bool)>,
) {
    let sim = m.sim();
    if !m.faults_active() {
        let arrival = m
            .inner
            .net
            .borrow_mut()
            .deliver_op(inject, src, dst, payload, class, op)
            + extra;
        m.schedule_leg(src, dst, arrival, move || then(arrival, true));
        return;
    }
    let stats = m.stats();
    let outcome = m
        .inner
        .net
        .borrow_mut()
        .try_deliver_op(inject, src, dst, payload, class, op);
    match outcome {
        Delivery::Delivered(t) => {
            if attempt > 0 {
                stats.record_hist("pami.op_retries", attempt as u64);
            }
            let arrival = t + extra;
            sim.schedule(arrival, move || then(arrival, true));
        }
        Delivery::Dropped { .. } => {
            stats.incr("pami.timeouts");
            if let Some(ids) = m.tl_ids() {
                sim.timeline().add(ids.timeouts, inject, 1);
            }
            let policy = m.retry_policy();
            if attempt >= policy.max_retries {
                match policy.failure {
                    FailureMode::FailFast => panic!(
                        "rank {src} -> {dst}: response leg lost after {attempt} retries \
                         (fault plan too hostile for the retry policy)"
                    ),
                    FailureMode::BestEffort => {
                        stats.incr("pami.gave_up");
                        let at = policy.resume_at(inject, attempt);
                        sim.schedule(at, move || then(at, false));
                    }
                }
                return;
            }
            let resume = policy.resume_at(inject, attempt);
            if let Some(op) = op {
                sim.flight()
                    .segment(op, SegCategory::Retry, "pami.retry", inject, resume);
            }
            m.tl_retry_backlog(inject, 1);
            let m2 = m.clone();
            let _mem = memprof::scope(&RETRY_TAG);
            sim.schedule(resume, move || {
                m2.stats().incr("pami.retries");
                if let Some(ids) = m2.tl_ids() {
                    m2.sim().timeline().add(ids.retries, resume, 1);
                }
                m2.tl_retry_backlog(resume, -1);
                deliver_then(
                    &m2,
                    resume,
                    src,
                    dst,
                    payload,
                    class,
                    op,
                    extra,
                    attempt + 1,
                    then,
                );
            });
        }
    }
}

/// The landing half of a software-path message: enqueue `item` on the
/// target's designated context at `arrival`. Must run *as* the landing event
/// (callers schedule it through `schedule_leg`, or invoke it directly from a
/// `deliver_then` continuation, which already is one). Spawns the target's
/// asynchronous progress thread lazily, before the push, so the freshly
/// enqueued thread polls ahead of anyone the push's notify wakes — the same
/// order an eagerly spawned thread (parked on `arrived` since t=0) would
/// wake in.
pub(crate) fn enqueue_at_target(
    m: &Machine,
    target: usize,
    arrival: SimTime,
    item: WorkItem,
    op: Option<OpId>,
) {
    let st = m.rank_state(target);
    if let Some(at_ctx) = st.at_ctx.get() {
        if st.at.borrow().is_none() {
            let at = m.rank(target).start_progress_thread(at_ctx);
            *st.at.borrow_mut() = Some(at);
        }
    }
    let ctx = &st.contexts[m.target_ctx()];
    ctx.push(item, op, arrival);
    // Sample the post-push depth: the per-window gauge max is the deepest
    // any sampled context queue got inside that window.
    if let Some(ids) = m.tl_ids() {
        m.sim()
            .timeline()
            .gauge(ids.queue_depth, arrival, ctx.depth() as i64);
    }
}

/// Handle to one simulated process ("task" in PAMI terms).
///
/// All communication primitives are modelled after PAMI's RMA/AM interface:
/// `rdma_*` operations complete without target-CPU involvement; `sw_*`,
/// [`PamiRank::rmw`], [`PamiRank::acc_f64`] and [`PamiRank::am_send`] enqueue
/// work that the target only executes when its progress engine runs
/// ([`PamiRank::advance`], driven by [`PamiRank::progress_wait`] or an
/// asynchronous progress thread).
#[derive(Clone)]
pub struct PamiRank {
    pub(crate) m: Machine,
    pub(crate) r: usize,
}

impl PamiRank {
    /// This rank's id.
    pub fn id(&self) -> usize {
        self.r
    }

    /// The machine this rank belongs to.
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    fn state(&self) -> Rc<crate::machine::RankState> {
        self.m.rank_state(self.r)
    }

    fn ctx(&self, idx: usize) -> Rc<CtxState> {
        Rc::clone(&self.state().contexts[idx])
    }

    /// Arm asynchronous progress for this rank: the progress thread that
    /// services context `ctx_idx` is spawned lazily, when the first work
    /// item actually targets this rank — an idle rank armed for async
    /// progress carries no task. Stopped collectively via
    /// [`Machine::stop_progress_threads`].
    pub fn enable_async_progress(&self, ctx_idx: usize) {
        self.state().at_ctx.set(Some(ctx_idx));
    }

    /// The operation id messages injected by this rank are currently
    /// attributed to (set by the ARMCI layer around each operation; `None`
    /// when the flight recorder is off or no operation is in flight).
    pub fn current_op(&self) -> Option<OpId> {
        self.state().cur_op.get()
    }

    /// Set (or clear) the operation id subsequent injections by this rank
    /// are attributed to.
    pub fn set_current_op(&self, op: Option<OpId>) {
        self.state().cur_op.set(op);
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocate `len` bytes in this rank's memory arena (8-byte aligned).
    pub fn alloc(&self, len: usize) -> usize {
        let st = self.state();
        let off = (st.next_alloc.get() + 7) & !7;
        st.next_alloc.set(off + len);
        off
    }

    /// Write raw bytes into this rank's memory.
    pub fn write_bytes(&self, off: usize, data: &[u8]) {
        self.state().write(off, data);
    }

    /// Read raw bytes from this rank's memory.
    pub fn read_bytes(&self, off: usize, len: usize) -> Vec<u8> {
        self.state().read(off, len)
    }

    /// Read an `i64` (little-endian) from this rank's memory.
    pub fn read_i64(&self, off: usize) -> i64 {
        self.state().read_i64(off)
    }

    /// Write an `i64` (little-endian) into this rank's memory.
    pub fn write_i64(&self, off: usize, v: i64) {
        self.state().write_i64(off, v);
    }

    /// Read `n` f64s from this rank's memory.
    pub fn read_f64s(&self, off: usize, n: usize) -> Vec<f64> {
        let raw = self.read_bytes(off, n * 8);
        raw.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// Write f64s into this rank's memory.
    pub fn write_f64s(&self, off: usize, xs: &[f64]) {
        let mut raw = Vec::with_capacity(xs.len() * 8);
        for x in xs {
            raw.extend_from_slice(&x.to_le_bytes());
        }
        self.write_bytes(off, &raw);
    }

    // ------------------------------------------------------------------
    // PAMI objects: contexts, endpoints, memory regions
    // ------------------------------------------------------------------

    /// Pay the context-creation cost for this rank's ρ contexts and account
    /// their space (ε each). Called once at runtime initialization.
    pub async fn create_contexts(&self) {
        let p = self.m.params();
        let n = self.m.config().contexts_per_rank as u64;
        self.m.sim().sleep(p.context_create * n).await;
        for _ in 0..n {
            self.state().space.add_context(p.context_bytes);
        }
        self.m.stats().add("pami.contexts_created", n);
    }

    /// Ensure an endpoint addressing `(target, ctx)` exists; creating one
    /// costs β and α bytes. Returns `true` when it was created by this call.
    pub async fn ensure_endpoint(&self, target: usize, ctx: usize) -> bool {
        let key = (target as u32, ctx as u8);
        if self.state().endpoints.borrow().contains(&key) {
            return false;
        }
        let p = self.m.params();
        let (beta, alpha) = (p.endpoint_create, p.endpoint_bytes);
        self.m.sim().sleep(beta).await;
        self.state().endpoints.borrow_mut().insert(key);
        self.state().space.add_endpoint(alpha);
        self.m.stats().incr("pami.endpoints_created");
        true
    }

    /// Number of endpoints this rank has created.
    pub fn endpoint_count(&self) -> usize {
        self.state().endpoints.borrow().len()
    }

    /// Register `[off, off+len)` as an RDMA memory region. Costs δ and γ
    /// bytes of metadata; fails once the per-rank limit is reached.
    pub async fn register_region(&self, off: usize, len: usize) -> Result<RegionId, RegionError> {
        let limit = self.m.config().memregion_limit;
        let st = self.state();
        if let Some(limit) = limit {
            if st.active_regions.get() >= limit {
                self.m.stats().incr("pami.region_register_failed");
                return Err(RegionError::LimitReached);
            }
        }
        let p = self.m.params();
        let (delta, gamma) = (p.memregion_create, p.memregion_bytes);
        self.m.sim().sleep(delta).await;
        let id = {
            let mut regions = st.regions.borrow_mut();
            regions.push(Region {
                off,
                len,
                active: true,
            });
            RegionId(regions.len() - 1)
        };
        st.active_regions.set(st.active_regions.get() + 1);
        st.space.add_region(gamma);
        self.m.stats().incr("pami.regions_created");
        Ok(id)
    }

    /// Register a region without charging δ — for setup-phase allocations
    /// (e.g. collective array creation) excluded from measurement windows.
    /// Still respects the region limit and accounts γ bytes.
    pub fn register_region_untimed(&self, off: usize, len: usize) -> Result<RegionId, RegionError> {
        let st = self.state();
        if let Some(limit) = self.m.config().memregion_limit {
            if st.active_regions.get() >= limit {
                self.m.stats().incr("pami.region_register_failed");
                return Err(RegionError::LimitReached);
            }
        }
        let id = {
            let mut regions = st.regions.borrow_mut();
            regions.push(Region {
                off,
                len,
                active: true,
            });
            RegionId(regions.len() - 1)
        };
        st.active_regions.set(st.active_regions.get() + 1);
        st.space.add_region(self.m.params().memregion_bytes);
        self.m.stats().incr("pami.regions_created");
        Ok(id)
    }

    /// Deregister a region, freeing a limit slot and its metadata bytes.
    pub fn deregister_region(&self, id: RegionId) {
        let st = self.state();
        let mut regions = st.regions.borrow_mut();
        let region = &mut regions[id.0];
        if region.active {
            region.active = false;
            st.active_regions.set(st.active_regions.get() - 1);
            st.space.sub_region(self.m.params().memregion_bytes);
        }
    }

    /// Find an active region of this rank fully covering `[off, off+len)`.
    pub fn find_region(&self, off: usize, len: usize) -> Option<RegionId> {
        self.state()
            .regions
            .borrow()
            .iter()
            .enumerate()
            .find(|(_, reg)| reg.active && reg.off <= off && off + len <= reg.off + reg.len)
            .map(|(i, _)| RegionId(i))
    }

    /// Number of currently active regions.
    pub fn region_count(&self) -> usize {
        self.state().active_regions.get()
    }

    /// `(offset, len)` bounds of a registered region.
    pub fn region_bounds(&self, id: RegionId) -> (usize, usize) {
        let st = self.state();
        let regions = st.regions.borrow();
        let r = &regions[id.0];
        (r.off, r.len)
    }

    /// Register an active-message handler under `dispatch` on context `ctx`.
    pub fn register_dispatch(&self, ctx: usize, dispatch: u16, handler: AmHandler) {
        self.ctx(ctx)
            .dispatch
            .borrow_mut()
            .insert(dispatch, handler);
    }

    // ------------------------------------------------------------------
    // Reliable delivery (fault-plan aware)
    // ------------------------------------------------------------------

    /// Deliver one request leg from this rank, retrying per the machine's
    /// [`crate::RetryPolicy`] when the fault layer drops it. Returns the
    /// arrival time and whether the payload was actually delivered (`false`
    /// only under [`FailureMode::BestEffort`] after retry exhaustion — the
    /// caller must then complete the operation without its data effect).
    /// Without an active fault plan this is exactly one `deliver_op` call,
    /// so fault-free runs are byte-identical to the pre-fault code path.
    pub(crate) async fn deliver_reliable(
        &self,
        inject: SimTime,
        target: usize,
        payload: usize,
        class: MsgClass,
        op: Option<OpId>,
    ) -> (SimTime, bool) {
        let inner = Rc::clone(&self.m.inner);
        if !self.m.faults_active() {
            let arrival = inner
                .net
                .borrow_mut()
                .deliver_op(inject, self.r, target, payload, class, op);
            return (arrival, true);
        }
        let sim = self.m.sim();
        let stats = self.m.stats();
        let policy = self.m.retry_policy();
        let mut attempt: u32 = 0;
        let mut inject = inject;
        loop {
            let outcome = inner
                .net
                .borrow_mut()
                .try_deliver_op(inject, self.r, target, payload, class, op);
            match outcome {
                Delivery::Delivered(arrival) => {
                    if attempt > 0 {
                        stats.record_hist("pami.op_retries", attempt as u64);
                    }
                    return (arrival, true);
                }
                Delivery::Dropped { .. } => {
                    stats.incr("pami.timeouts");
                    if let Some(ids) = self.m.tl_ids() {
                        sim.timeline().add(ids.timeouts, inject, 1);
                    }
                    if attempt >= policy.max_retries {
                        match policy.failure {
                            FailureMode::FailFast => panic!(
                                "rank {} -> {target}: operation lost after {attempt} retries \
                                 (fault plan too hostile for the retry policy)",
                                self.r
                            ),
                            FailureMode::BestEffort => {
                                stats.incr("pami.gave_up");
                                return (policy.resume_at(inject, attempt), false);
                            }
                        }
                    }
                    // Wait out the timeout plus this attempt's backoff, then
                    // retransmit. The retransmit goes through the normal
                    // delivery path, so pair ordering still holds: the pair
                    // front only advanced on deliveries, never on this drop.
                    let resume = policy.resume_at(inject, attempt);
                    if let Some(op) = op {
                        sim.flight()
                            .segment(op, SegCategory::Retry, "pami.retry", inject, resume);
                    }
                    self.m.tl_retry_backlog(inject, 1);
                    sim.sleep_until(resume).await;
                    stats.incr("pami.retries");
                    if let Some(ids) = self.m.tl_ids() {
                        sim.timeline().add(ids.retries, resume, 1);
                    }
                    self.m.tl_retry_backlog(resume, -1);
                    attempt += 1;
                    inject = sim.now();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // RDMA (zero-copy, no target CPU)
    // ------------------------------------------------------------------

    /// RDMA put: `len` bytes from this rank's `local_off` to `target`'s
    /// `remote_off`. The data snapshot is taken at post time (buffer-reuse
    /// semantics); the remote completion fires when the payload lands, the
    /// local completion after the hardware ack returns.
    pub async fn rdma_put(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        len: usize,
    ) -> PutHandles {
        let inner = Rc::clone(&self.m.inner);
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.rdma_put");
        sim.sleep(p.o_send).await;
        let data = self.read_bytes(local_off, len);
        let inject = sim.now() + p.rdma_engine;
        let (raw, delivered) = self
            .deliver_reliable(inject, target, len, MsgClass::Ordered, op)
            .await;
        let arrival = raw + p.align_penalty(len);
        let handles = PutHandles {
            local: Completion::new(),
            remote: Completion::new(),
        };
        let remote_done = handles.remote.clone();
        let tgt_state = self.m.rank_state(target);
        self.m.schedule_leg(self.r, target, arrival, move || {
            if delivered {
                tgt_state.write(remote_off, &data);
            }
            remote_done.complete(());
        });
        let hops = inner.net.borrow().hops(self.r, target);
        let ack = arrival + p.oneway_header(hops);
        let local_done = handles.local.clone();
        sim.schedule(ack, move || local_done.complete(()));
        handles
    }

    /// RDMA get: `len` bytes from `target`'s `remote_off` into this rank's
    /// `local_off`. The target memory is read when the request reaches the
    /// target NIC — no target CPU involvement (paper Eq. 7).
    pub async fn rdma_get(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        len: usize,
    ) -> Completion<()> {
        let sim = self.m.sim();
        // `p` crosses into the `'static` response closure below: share the
        // Rc rather than cloning the whole parameter struct.
        let p = self.m.params_rc();
        let op = self.current_op();
        self.m.stats().incr("pami.rdma_get");
        sim.sleep(p.o_send).await;
        let inject = sim.now() + p.rdma_engine;
        let (req_arrival, req_delivered) = self
            .deliver_reliable(inject, target, 0, MsgClass::Control, op)
            .await;
        let done = Completion::new();
        let done2 = done.clone();
        let src = self.r;
        if !req_delivered {
            // Gave up on the request (best-effort): complete without data.
            sim.schedule(req_arrival, move || done2.complete(()));
            return done;
        }
        let m = self.m.clone();
        self.m.schedule_leg(self.r, target, req_arrival, move || {
            let data = m.rank_state(target).read(remote_off, len);
            let src_state = m.rank_state(src);
            let extra = p.align_penalty(len);
            deliver_then(
                &m,
                req_arrival,
                target,
                src,
                len,
                MsgClass::Ordered,
                op,
                extra,
                0,
                Box::new(move |_, delivered| {
                    if delivered {
                        src_state.write(local_off, &data);
                    }
                    done2.complete(());
                }),
            );
        });
        done
    }

    // ------------------------------------------------------------------
    // Software path (target CPU required)
    // ------------------------------------------------------------------

    pub(crate) fn push_to_target(
        &self,
        target: usize,
        arrival: desim::SimTime,
        item: WorkItem,
        op: Option<OpId>,
    ) {
        let m = self.m.clone();
        self.m.schedule_leg(self.r, target, arrival, move || {
            enqueue_at_target(&m, target, arrival, item, op);
        });
    }

    /// Software put (PAMI default RMA): the payload travels as an active
    /// message and is written by the *target CPU* during progress.
    pub async fn sw_put(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        len: usize,
    ) -> PutHandles {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.sw_put");
        sim.sleep(p.o_send).await;
        let data = self.read_bytes(local_off, len);
        let (arrival, delivered) = self
            .deliver_reliable(
                sim.now(),
                target,
                len + p.am_header_bytes,
                MsgClass::Ordered,
                op,
            )
            .await;
        let handles = PutHandles {
            local: Completion::new(),
            remote: Completion::new(),
        };
        handles.local.complete(()); // buffered at send
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::SwPut {
                    src: self.r,
                    offset: remote_off,
                    data,
                    remote_done: handles.remote.clone(),
                },
                op,
            );
        } else {
            let remote_done = handles.remote.clone();
            sim.schedule(arrival, move || remote_done.complete(()));
        }
        handles
    }

    /// Software get (the fall-back protocol, paper Eq. 8): an active message
    /// asks the target to read and reply; requires target progress.
    pub async fn sw_get(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        len: usize,
    ) -> Completion<()> {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.sw_get");
        sim.sleep(p.o_send).await;
        let (arrival, delivered) = self
            .deliver_reliable(sim.now(), target, p.am_header_bytes, MsgClass::Control, op)
            .await;
        let done = Completion::new();
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::SwGet {
                    src: self.r,
                    offset: remote_off,
                    len,
                    local_off,
                    done: done.clone(),
                },
                op,
            );
        } else {
            let done2 = done.clone();
            sim.schedule(arrival, move || done2.complete(()));
        }
        done
    }

    /// Accumulate `dst[i] += scale·src[i]` over f64s at the target (applied
    /// by the target CPU during progress; associative, so unordered with
    /// respect to other accumulates).
    pub async fn acc_f64(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        elems: usize,
        scale: f64,
    ) -> PutHandles {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.acc");
        sim.sleep(p.o_send).await;
        let data = self.read_bytes(local_off, elems * 8);
        let (arrival, delivered) = self
            .deliver_reliable(
                sim.now(),
                target,
                elems * 8 + p.am_header_bytes,
                MsgClass::Ordered,
                op,
            )
            .await;
        let handles = PutHandles {
            local: Completion::new(),
            remote: Completion::new(),
        };
        handles.local.complete(());
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::AccF64 {
                    src: self.r,
                    offset: remote_off,
                    scale,
                    data,
                    remote_done: handles.remote.clone(),
                },
                op,
            );
        } else {
            let remote_done = handles.remote.clone();
            sim.schedule(arrival, move || remote_done.complete(()));
        }
        handles
    }

    /// Atomic read-modify-write on an i64 in the target's memory. AMOs are
    /// **unordered** with respect to all other traffic (paper §III-A4) and
    /// serviced by target-side software (§III-D).
    pub async fn rmw(&self, target: usize, remote_off: usize, op: RmwOp) -> Completion<i64> {
        let sim = self.m.sim();
        let p = self.m.params();
        let flight_op = self.current_op();
        self.m.stats().incr("pami.rmw");
        sim.sleep(p.o_send).await;
        let (arrival, delivered) = self
            .deliver_reliable(sim.now(), target, 16, MsgClass::Unordered, flight_op)
            .await;
        let done = Completion::new();
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::Rmw {
                    src: self.r,
                    offset: remote_off,
                    op,
                    done: done.clone(),
                },
                flight_op,
            );
        } else {
            // Best-effort give-up: the AMO never reached the target; its
            // fetch result is reported as 0.
            let done2 = done.clone();
            sim.schedule(arrival, move || done2.complete(0));
        }
        done
    }

    /// Packed (typed-datatype) strided get: ship a chunk descriptor to the
    /// target, whose CPU gathers the chunks into one bulk reply; the reply is
    /// scattered into `local_chunks` here. Used for tall-skinny strided
    /// transfers (paper §III-C2).
    pub async fn packed_get(
        &self,
        target: usize,
        chunks: Vec<(usize, usize)>,
        local_chunks: Vec<(usize, usize)>,
    ) -> Completion<()> {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.packed_get");
        sim.sleep(p.o_send).await;
        let desc_bytes = p.am_header_bytes + chunks.len() * 16;
        let (arrival, delivered) = self
            .deliver_reliable(sim.now(), target, desc_bytes, MsgClass::Control, op)
            .await;
        let done = Completion::new();
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::PackedGet {
                    src: self.r,
                    chunks,
                    local_chunks,
                    done: done.clone(),
                },
                op,
            );
        } else {
            let done2 = done.clone();
            sim.schedule(arrival, move || done2.complete(()));
        }
        done
    }

    /// Packed (typed-datatype) strided put: gather the local chunks (CPU
    /// pack cost), ship one bulk message, and have the target CPU scatter it.
    pub async fn packed_put(
        &self,
        target: usize,
        local_chunks: Vec<(usize, usize)>,
        remote_chunks: Vec<(usize, usize)>,
    ) -> PutHandles {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.packed_put");
        sim.sleep(p.o_send).await;
        let total: usize = local_chunks.iter().map(|&(_, l)| l).sum();
        sim.sleep(SimDuration::from_ps(total as u64 * p.pack_byte_time_ps))
            .await;
        let mut data = Vec::with_capacity(total);
        for &(off, len) in &local_chunks {
            data.extend_from_slice(&self.read_bytes(off, len));
        }
        let (arrival, delivered) = self
            .deliver_reliable(
                sim.now(),
                target,
                total + p.am_header_bytes + remote_chunks.len() * 16,
                MsgClass::Ordered,
                op,
            )
            .await;
        let handles = PutHandles {
            local: Completion::new(),
            remote: Completion::new(),
        };
        handles.local.complete(()); // packed copy: buffer immediately reusable
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::PackedPut {
                    src: self.r,
                    data,
                    chunks: remote_chunks,
                    remote_done: handles.remote.clone(),
                },
                op,
            );
        } else {
            let remote_done = handles.remote.clone();
            sim.schedule(arrival, move || remote_done.complete(()));
        }
        handles
    }

    /// Packed strided accumulate: gather local chunks, ship one message, and
    /// have the target CPU scatter-accumulate (`dst += scale·src`) into the
    /// remote chunks.
    pub async fn acc_strided_f64(
        &self,
        target: usize,
        local_chunks: Vec<(usize, usize)>,
        remote_chunks: Vec<(usize, usize)>,
        scale: f64,
    ) -> PutHandles {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.acc_strided");
        sim.sleep(p.o_send).await;
        let total: usize = local_chunks.iter().map(|&(_, l)| l).sum();
        sim.sleep(SimDuration::from_ps(total as u64 * p.pack_byte_time_ps))
            .await;
        let mut data = Vec::with_capacity(total);
        for &(off, len) in &local_chunks {
            data.extend_from_slice(&self.read_bytes(off, len));
        }
        let (arrival, delivered) = self
            .deliver_reliable(
                sim.now(),
                target,
                total + p.am_header_bytes + remote_chunks.len() * 16,
                MsgClass::Ordered,
                op,
            )
            .await;
        let handles = PutHandles {
            local: Completion::new(),
            remote: Completion::new(),
        };
        handles.local.complete(());
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::AccStrided {
                    src: self.r,
                    data,
                    chunks: remote_chunks,
                    scale,
                    remote_done: handles.remote.clone(),
                },
                op,
            );
        } else {
            let remote_done = handles.remote.clone();
            sim.schedule(arrival, move || remote_done.complete(()));
        }
        handles
    }

    /// Send an active message to a registered handler at the target.
    /// The returned completion covers *local* send completion only.
    pub async fn am_send(
        &self,
        target: usize,
        dispatch: u16,
        header: Vec<u8>,
        payload: Vec<u8>,
    ) -> Completion<()> {
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.am");
        sim.sleep(p.o_send).await;
        let (arrival, delivered) = self
            .deliver_reliable(
                sim.now(),
                target,
                header.len() + payload.len() + p.am_header_bytes,
                MsgClass::Control,
                op,
            )
            .await;
        let done = Completion::new();
        done.complete(());
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::Am {
                    src: self.r,
                    dispatch,
                    header,
                    payload,
                },
                op,
            );
        }
        done
    }

    /// Immediate active message (PAMI's blocking variant, §III-A2): small
    /// header-only payloads with blocking send-completion semantics — the
    /// call returns once the message is on the wire.
    pub async fn am_send_immediate(&self, target: usize, dispatch: u16, header: Vec<u8>) {
        assert!(
            header.len() <= 128,
            "immediate AMs carry at most 128 header bytes"
        );
        let sim = self.m.sim();
        let p = self.m.params();
        let op = self.current_op();
        self.m.stats().incr("pami.am_immediate");
        sim.sleep(p.o_send).await;
        let (arrival, delivered) = self
            .deliver_reliable(
                sim.now(),
                target,
                header.len() + p.am_header_bytes,
                MsgClass::Control,
                op,
            )
            .await;
        if delivered {
            self.push_to_target(
                target,
                arrival,
                WorkItem::Am {
                    src: self.r,
                    dispatch,
                    header,
                    payload: Vec::new(),
                },
                op,
            );
        }
        // Blocking completion: occupied until the NIC accepts the packet.
        sim.sleep(p.rdma_engine).await;
    }

    // ------------------------------------------------------------------
    // Progress engine
    // ------------------------------------------------------------------

    /// Drive the progress engine on context `ctx_idx`: acquire the context
    /// lock and service up to `max_items` queued work items. Returns the
    /// number serviced.
    pub async fn advance(&self, ctx_idx: usize, max_items: usize) -> usize {
        self.advance_on(ctx_idx, max_items, false).await
    }

    /// `advance` with attribution: `from_at` marks the asynchronous progress
    /// thread as the driver, so trace spans land on its own track and the
    /// §III-D lock contention (main thread vs AT on one context) is visible.
    async fn advance_on(&self, ctx_idx: usize, max_items: usize, from_at: bool) -> usize {
        let sim = self.m.sim();
        // A hung node (fault plan) cannot drive its progress engine: stall
        // here until the hang window ends. No-op without an active plan.
        if let Some(resume) = self.m.node_hang_until(self.r, sim.now()) {
            sim.sleep_until(resume).await;
        }
        let stats = self.m.stats();
        let fl = sim.flight();
        let ctx = self.ctx(ctx_idx);
        let t_req = sim.now();
        // The op the *driver* of this advance is working on: lock-wait time
        // is charged to it as contention. The AT drives on its own behalf.
        let driver_op = if from_at { None } else { self.current_op() };
        let _guard = ctx.lock.lock().await;
        let lock_wait = sim.now().since(t_req);
        if !lock_wait.is_zero() {
            // Someone else held the progress lock: the ρ=1 contention.
            stats.record_time("pami.ctx.lock_wait", lock_wait);
            stats.incr("pami.ctx.lock_contended");
            if let Some(ids) = self.m.tl_ids() {
                sim.timeline().add(ids.lock_wait, t_req, lock_wait.as_ps());
            }
            if let Some(op) = driver_op {
                fl.segment(
                    op,
                    SegCategory::Contention,
                    "pami.lock_wait",
                    t_req,
                    sim.now(),
                );
            }
        }
        let t_hold = sim.now();
        let tracer = sim.tracer();
        let track = if tracer.on() {
            Some(self.service_track(&tracer, from_at))
        } else {
            None
        };
        let mut n = 0;
        while n < max_items {
            let queued = ctx.queue.borrow_mut().pop_front();
            let Some(queued) = queued else { break };
            let item = queued.item;
            let item_op = queued.op;
            let svc_start = sim.now();
            if let Some(op) = item_op {
                // Split the item's queue time at the instant the servicing
                // rank started continuously driving progress: before that,
                // nobody was listening (§III-D progress starvation); after
                // it, the item merely waited its turn behind the batch.
                let since = ctx.progress_since.get().unwrap_or(t_req);
                let boundary = since.max(queued.enqueued).min(svc_start);
                fl.segment(
                    op,
                    SegCategory::Starvation,
                    "pami.starved",
                    queued.enqueued,
                    boundary,
                );
                fl.segment(op, SegCategory::Queueing, "pami.queue", boundary, svc_start);
            }
            if let Some(track) = track {
                let name = item.kind_name();
                tracer.span_begin(
                    track,
                    name,
                    sim.now(),
                    &[("src", desim::TraceValue::U64(item.src() as u64))],
                );
                self.service_item(item, item_op).await;
                tracer.span_end(track, name, sim.now(), &[]);
            } else {
                self.service_item(item, item_op).await;
            }
            if let Some(op) = item_op {
                fl.segment(
                    op,
                    SegCategory::Compute,
                    "pami.service",
                    svc_start,
                    sim.now(),
                );
            }
            ctx.serviced.set(ctx.serviced.get() + 1);
            n += 1;
        }
        if n > 0 {
            stats.record_time("pami.ctx.lock_hold", sim.now().since(t_hold));
            stats.record_hist("pami.advance_batch", n as u64);
            if let Some(ids) = self.m.tl_ids() {
                let tl = sim.timeline();
                tl.add(ids.lock_hold, t_hold, sim.now().since(t_hold).as_ps());
                // Post-batch depth sample: captures drain (toward zero) as
                // well as the build-up sampled at push time.
                tl.gauge(ids.queue_depth, sim.now(), ctx.depth() as i64);
            }
        }
        n
    }

    /// The trace track progress work is attributed to: the rank's main lane,
    /// or its asynchronous-progress lane when driven by the AT.
    fn service_track(&self, tracer: &desim::Tracer, from_at: bool) -> desim::TrackId {
        if from_at {
            tracer.track(&format!("rank {} (at)", self.r))
        } else {
            tracer.track(&format!("rank {}", self.r))
        }
    }

    /// Execute one work item (context lock held by the caller). Reply
    /// messages it injects are attributed to `flight_op`, the operation the
    /// item belongs to.
    async fn service_item(&self, item: WorkItem, flight_op: Option<OpId>) {
        let sim = self.m.sim();
        let p = self.m.params();
        match item {
            WorkItem::SwPut {
                offset,
                data,
                remote_done,
                ..
            } => {
                sim.sleep(p.am_dispatch).await;
                self.state().write(offset, &data);
                remote_done.complete(());
            }
            WorkItem::SwGet {
                src,
                offset,
                len,
                local_off,
                done,
            } => {
                sim.sleep(p.am_dispatch).await;
                let data = self.state().read(offset, len);
                let src_state = self.m.rank_state(src);
                deliver_then(
                    &self.m,
                    sim.now(),
                    self.r,
                    src,
                    len,
                    MsgClass::Ordered,
                    flight_op,
                    p.align_penalty(len),
                    0,
                    Box::new(move |_, delivered| {
                        if delivered {
                            src_state.write(local_off, &data);
                        }
                        done.complete(());
                    }),
                );
            }
            WorkItem::Rmw {
                src,
                offset,
                op,
                done,
            } => {
                sim.sleep(p.rmw_service).await;
                let old = self.state().read_i64(offset);
                let new = match op {
                    RmwOp::FetchAdd(v) => Some(old.wrapping_add(v)),
                    RmwOp::Swap(v) => Some(v),
                    RmwOp::CompareSwap { compare, swap } => {
                        if old == compare {
                            Some(swap)
                        } else {
                            None
                        }
                    }
                };
                if let Some(new) = new {
                    self.state().write_i64(offset, new);
                }
                deliver_then(
                    &self.m,
                    sim.now(),
                    self.r,
                    src,
                    8,
                    MsgClass::Unordered,
                    flight_op,
                    SimDuration::ZERO,
                    0,
                    Box::new(move |_, _| done.complete(old)),
                );
            }
            WorkItem::AccF64 {
                offset,
                scale,
                data,
                remote_done,
                ..
            } => {
                let elems = data.len() / 8;
                let cost = p.am_dispatch + SimDuration::from_ps(elems as u64 * p.acc_elem_time_ps);
                sim.sleep(cost).await;
                let incoming: Vec<f64> = data
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                let mut cur = self.read_f64s(offset, elems);
                for (c, x) in cur.iter_mut().zip(&incoming) {
                    *c += scale * x;
                }
                self.write_f64s(offset, &cur);
                remote_done.complete(());
            }
            WorkItem::PackedGet {
                src,
                chunks,
                local_chunks,
                done,
            } => {
                let total: usize = chunks.iter().map(|&(_, l)| l).sum();
                let pack = SimDuration::from_ps(total as u64 * p.pack_byte_time_ps);
                sim.sleep(p.am_dispatch + pack).await;
                let mut data = Vec::with_capacity(total);
                for &(off, len) in &chunks {
                    data.extend_from_slice(&self.state().read(off, len));
                }
                let src_state = self.m.rank_state(src);
                deliver_then(
                    &self.m,
                    sim.now(),
                    self.r,
                    src,
                    total,
                    MsgClass::Ordered,
                    flight_op,
                    pack, // unpack (scatter) cost at the requester
                    0,
                    Box::new(move |_, delivered| {
                        if delivered {
                            let mut cursor = 0;
                            for &(off, len) in &local_chunks {
                                src_state.write(off, &data[cursor..cursor + len]);
                                cursor += len;
                            }
                        }
                        done.complete(());
                    }),
                );
            }
            WorkItem::PackedPut {
                data,
                chunks,
                remote_done,
                ..
            } => {
                let total = data.len();
                let pack = SimDuration::from_ps(total as u64 * p.pack_byte_time_ps);
                sim.sleep(p.am_dispatch + pack).await;
                let mut cursor = 0;
                for &(off, len) in &chunks {
                    self.state().write(off, &data[cursor..cursor + len]);
                    cursor += len;
                }
                remote_done.complete(());
            }
            WorkItem::AccStrided {
                data,
                chunks,
                scale,
                remote_done,
                ..
            } => {
                let elems = data.len() / 8;
                let cost = p.am_dispatch + SimDuration::from_ps(elems as u64 * p.acc_elem_time_ps);
                sim.sleep(cost).await;
                let mut cursor = 0;
                for &(off, len) in &chunks {
                    let n = len / 8;
                    let mut cur = self.read_f64s(off, n);
                    for (i, c) in cur.iter_mut().enumerate() {
                        let b = &data[cursor + i * 8..cursor + i * 8 + 8];
                        let x = f64::from_le_bytes(b.try_into().expect("8 bytes"));
                        *c += scale * x;
                    }
                    self.write_f64s(off, &cur);
                    cursor += len;
                }
                remote_done.complete(());
            }
            WorkItem::Am {
                src,
                dispatch,
                header,
                payload,
            } => {
                sim.sleep(p.am_dispatch).await;
                self.dispatch_am(src, dispatch, header, payload);
            }
            WorkItem::AmBatch { src, entries } => {
                // One protocol dispatch for the whole wire message; each
                // coalesced AM then costs only its deserialization copy —
                // the receive-side half of the batching win.
                sim.sleep(p.am_dispatch).await;
                for e in entries {
                    let bytes = e.header.len() + e.payload.len();
                    sim.sleep(SimDuration::from_ps(bytes as u64 * p.pack_byte_time_ps))
                        .await;
                    self.dispatch_am(src, e.dispatch, e.header, e.payload);
                }
            }
        }
    }

    /// Run the handler registered for `dispatch`: the destination context's
    /// table first, the machine-wide table on a miss.
    fn dispatch_am(&self, src: usize, dispatch: u16, header: Vec<u8>, payload: Vec<u8>) {
        let ctx = self.ctx(self.m.target_ctx());
        let handler = ctx.dispatch.borrow().get(&dispatch).cloned();
        let handler = handler.or_else(|| self.m.am_handler(dispatch));
        match handler {
            Some(h) => h(
                AmEnv {
                    machine: self.m.clone(),
                    rank: self.r,
                },
                AmMsg {
                    src,
                    header,
                    payload,
                },
            ),
            None => {
                self.m.stats().incr("pami.am_unhandled");
            }
        }
    }

    /// Block until `done` completes, *while driving the progress engine* on
    /// the main context — this is how the default (D) configuration services
    /// remote requests: only when the main thread is inside a blocking
    /// communication call (paper §IV-B3).
    pub async fn progress_wait<T: Clone + 'static>(&self, done: &Completion<T>) -> T {
        let main_ctx = self.ctx(0);
        // While blocked here the rank *is* continuously driving the main
        // context's progress engine: work arriving from now on is queueing,
        // not progress starvation. Restore on exit so compute phases between
        // blocking calls count as starvation again.
        let mark_progress = main_ctx.progress_since.get().is_none();
        if mark_progress {
            main_ctx.progress_since.set(Some(self.m.sim().now()));
        }
        let v = loop {
            if let Some(v) = done.peek() {
                // Completions are reaped by advancing the context, which
                // requires the progress-engine lock — with ρ=1 this is where
                // the main thread contends with the asynchronous progress
                // thread (§III-D).
                let _reap = main_ctx.lock.lock().await;
                break v;
            }
            if main_ctx.depth() > 0 {
                self.advance(0, 1).await;
                continue;
            }
            match race(done.wait(), main_ctx.arrived.wait()).await {
                Either::Left(v) => {
                    let _reap = main_ctx.lock.lock().await;
                    break v;
                }
                Either::Right(()) => {}
            }
        };
        if mark_progress {
            main_ctx.progress_since.set(None);
        }
        v
    }

    /// Start an asynchronous progress thread (the paper's "AT" design): a
    /// task on one of the node's spare SMT threads that services context
    /// `ctx_idx` whenever work arrives, independent of the main thread.
    pub fn start_progress_thread(&self, ctx_idx: usize) -> AsyncThread {
        let stop = Completion::new();
        let stop2 = stop.clone();
        let this = self.clone();
        let sim = self.m.sim().clone();
        self.m.sim().spawn(async move {
            loop {
                if stop2.is_complete() {
                    break;
                }
                let ctx = this.ctx(ctx_idx);
                if ctx.depth() == 0 {
                    // Idle: until re-awoken, freshly arriving work starves.
                    ctx.progress_since.set(None);
                    match race(ctx.arrived.wait(), stop2.wait()).await {
                        Either::Left(()) => {}
                        Either::Right(()) => break,
                    }
                    continue;
                }
                sim.sleep(this.m.params().at_wakeup).await;
                // Awake and about to service: the wake-up delay itself counts
                // as starvation, everything after as batch queueing.
                if ctx.progress_since.get().is_none() {
                    ctx.progress_since.set(Some(sim.now()));
                }
                let n = this.advance_on(ctx_idx, usize::MAX, true).await;
                this.m.stats().add("pami.at_serviced", n as u64);
            }
        });
        AsyncThread { stop }
    }
}
