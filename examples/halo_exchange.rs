//! Halo exchange on a 1D process ring: each rank owns a slab of a field,
//! puts its boundary cells into its neighbours' ghost cells, and uses
//! ARMCI notify/wait for point-to-point synchronization (cheaper than a
//! global barrier per step) — a classic PGAS stencil pattern.
//!
//! ```sh
//! cargo run --release --example halo_exchange
//! ```

use armci::{Armci, ArmciConfig};
use desim::Sim;
use pami_sim::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

const P: usize = 8;
const CELLS: usize = 1024; // interior cells per rank
const STEPS: usize = 5;

fn main() {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(P).procs_per_node(4).contexts(2),
    );
    let armci = Armci::new(machine, ArmciConfig::default());

    // Layout per rank: [left ghost][CELLS interior][right ghost], f64 each.
    let slab_bytes = (CELLS + 2) * 8;
    let mut slabs = Vec::new();
    for r in 0..P {
        let pr = armci.machine().rank(r);
        let off = pr.alloc(slab_bytes);
        let _ = pr.register_region_untimed(off, slab_bytes);
        // Interior initialized to the rank id.
        pr.write_f64s(off + 8, &vec![r as f64; CELLS]);
        slabs.push(off);
    }
    for r in 0..P {
        for (o, &slab) in slabs.iter().enumerate() {
            if r != o {
                armci.seed_region(r, o, slab, slab_bytes);
            }
        }
    }

    let sums: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; P]));
    for r in 0..P {
        let rk = armci.rank(r);
        let s = sim.clone();
        let slabs = slabs.clone();
        let sums = Rc::clone(&sums);
        sim.spawn(async move {
            let left = (r + P - 1) % P;
            let right = (r + 1) % P;
            let my = slabs[r];
            for step in 0..STEPS {
                // Push boundary cells into the neighbours' ghost slots.
                let first_cell = my + 8;
                let last_cell = my + CELLS * 8;
                let left_ghost_of_right = slabs[right]; // their slot 0
                let right_ghost_of_left = slabs[left] + (CELLS + 1) * 8;
                rk.put(right, last_cell, left_ghost_of_right, 8).await;
                rk.fence(right).await;
                rk.notify(right).await;
                rk.put(left, first_cell, right_ghost_of_left, 8).await;
                rk.fence(left).await;
                rk.notify(left).await;
                // Wait for both neighbours' halos for this step.
                rk.wait_notify(left, step as i64 + 1).await;
                rk.wait_notify(right, step as i64 + 1).await;
                // Jacobi-ish relaxation over the interior (real math).
                let vals = rk.pami().read_f64s(my, CELLS + 2);
                let mut next = vals.clone();
                for i in 1..=CELLS {
                    next[i] = (vals[i - 1] + vals[i] + vals[i + 1]) / 3.0;
                }
                rk.pami().write_f64s(my, &next);
                // Model the stencil flops.
                s.sleep(desim::SimDuration::from_us(20)).await;
            }
            rk.barrier().await;
            let vals = rk.pami().read_f64s(my + 8, CELLS);
            sums.borrow_mut()[r] = vals.iter().sum();
        });
    }
    let end = sim.run();
    armci.finalize();
    sim.shutdown();

    let sums = sums.borrow();
    let total: f64 = sums.iter().sum();
    println!("halo exchange: {P} ranks x {CELLS} cells, {STEPS} steps, done at {end}");
    for (r, s) in sums.iter().enumerate() {
        println!("  rank {r}: interior sum {s:>10.3}");
    }
    // Diffusion conserves the total (up to the ghost flux at this scale).
    let initial: f64 = (0..P).map(|r| r as f64 * CELLS as f64).sum();
    println!("total {total:.1} (initial {initial:.1}) — mass approximately conserved");
    assert!((total - initial).abs() / initial < 0.01);
}
