//! Dynamic load balancing with a shared counter — the NWChem pattern the
//! paper's asynchronous-thread design accelerates (§III-D, Fig 9/11).
//!
//! Irregular task costs are drawn from a deterministic RNG; every rank pulls
//! its next task index with fetch-and-add on a counter hosted at rank 0.
//! Compare the Default (D) and Asynchronous-Thread (AT) progress modes.
//!
//! ```sh
//! cargo run --release --example load_balance
//! ```

use armci::{Armci, ArmciConfig, ProgressMode};
use desim::{Sim, SimDuration, SimRng};
use global_arrays::SharedCounter;
use pami_sim::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

const P: usize = 16;
const NTASKS: usize = 400;

fn run(mode: ProgressMode) -> (f64, f64, Vec<usize>) {
    let contexts = if mode == ProgressMode::AsyncThread {
        2
    } else {
        1
    };
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(P).procs_per_node(4).contexts(contexts),
    );
    let armci = Armci::new(machine, ArmciConfig::default().progress(mode));
    let counter = SharedCounter::create(&armci, 0);
    let waits: Rc<RefCell<Vec<SimDuration>>> = Rc::new(RefCell::new(vec![SimDuration::ZERO; P]));
    let tasks_done: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(vec![0; P]));

    for r in 0..P {
        let rk = armci.rank(r);
        let s = sim.clone();
        let counter = counter.clone();
        let waits = Rc::clone(&waits);
        let tasks_done = Rc::clone(&tasks_done);
        let mut rng = SimRng::new(99).derive(1); // same task-cost stream for all
        sim.spawn(async move {
            loop {
                let t0 = s.now();
                let t = counter.next(&rk, 1).await;
                waits.borrow_mut()[r] += s.now() - t0;
                if t >= NTASKS as i64 {
                    break;
                }
                // Task costs are irregular: 50..950 us, same for every run.
                let cost = (0..=t).map(|_| rng.range(50, 950)).last().unwrap_or(100);
                s.sleep(SimDuration::from_us(cost)).await;
                tasks_done.borrow_mut()[r] += 1;
            }
            rk.barrier().await;
        });
    }
    let end = sim.run();
    armci.finalize();
    sim.shutdown();
    let mean_wait = waits.borrow().iter().map(|d| d.as_us()).sum::<f64>() / P as f64;
    let done = tasks_done.borrow().clone();
    (end.as_us(), mean_wait, done)
}

fn main() {
    println!("dynamic load balancing: {NTASKS} irregular tasks over {P} ranks");
    for (label, mode) in [
        ("D ", ProgressMode::Default),
        ("AT", ProgressMode::AsyncThread),
    ] {
        let (total, wait, tasks) = run(mode);
        let min = tasks.iter().min().unwrap();
        let max = tasks.iter().max().unwrap();
        println!(
            "  {label}: total {total:>9.1} us, mean counter wait {wait:>8.1} us, tasks/rank {min}..{max}"
        );
        assert_eq!(tasks.iter().sum::<usize>(), NTASKS);
    }
    println!("the asynchronous thread removes the counter-service dependence on rank 0");
}
