//! The paper's §III-E motivating workload: a distributed `C = A·B` whose
//! inner loop overlaps non-blocking **gets of A and B** with **accumulates
//! into C**. Under the naive per-target consistency scheme every get is
//! fenced behind the outstanding accumulates (false positives); the paper's
//! per-memory-region status (`cs_mr`) recognizes that A/B reads and C writes
//! touch different distributed structures and skips the fences.
//!
//! ```sh
//! cargo run --release --example dgemm_overlap
//! ```

use armci::{Armci, ArmciConfig, ConsistencyMode};
use desim::{Sim, SimDuration};
use global_arrays::Ga;
use pami_sim::{Machine, MachineConfig};

const N: usize = 96; // matrix dimension
const NB: usize = 24; // block size
const P: usize = 4;

fn run(mode: ConsistencyMode) -> (f64, u64, f64) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(P).procs_per_node(1).contexts(2),
    );
    let armci = Armci::new(machine, ArmciConfig::default().consistency(mode));
    let a = Ga::create(&armci, "A", N, N);
    let b = Ga::create(&armci, "B", N, N);
    let c = Ga::create(&armci, "C", N, N);
    // A = 1, B = identity  =>  C should equal A after one sweep.
    a.fill(1.0);
    b.fill(0.0);
    for i in 0..N {
        b.set_direct(i, i, 1.0);
    }
    c.fill(0.0);

    let nblk = N / NB;
    for r in 0..P {
        let rk = armci.rank(r);
        let s = sim.clone();
        let (a, b, c) = (a.clone(), b.clone(), c.clone());
        sim.spawn(async move {
            let abuf = rk.malloc(NB * NB * 8).await;
            let bbuf = rk.malloc(NB * NB * 8).await;
            let cbuf = rk.malloc(NB * NB * 8).await;
            // Own a strided slice of the (i,j) block space.
            let mut task = 0usize;
            for bi in 0..nblk {
                for bj in 0..nblk {
                    if task % P == r {
                        let (ilo, ihi) = (bi * NB, (bi + 1) * NB);
                        let (jlo, jhi) = (bj * NB, (bj + 1) * NB);
                        for bk in 0..nblk {
                            let (klo, khi) = (bk * NB, (bk + 1) * NB);
                            // Overlapped: gets of A(b_i,b_k), B(b_k,b_j) while
                            // the previous accumulate into C is still in
                            // flight — the cs_mr pattern.
                            a.get_patch(&rk, ilo, ihi, klo, khi, abuf).await;
                            b.get_patch(&rk, klo, khi, jlo, jhi, bbuf).await;
                            // Local NB x NB dgemm (modelled flops + real math).
                            let av = rk.pami().read_f64s(abuf, NB * NB);
                            let bv = rk.pami().read_f64s(bbuf, NB * NB);
                            let mut cv = vec![0.0f64; NB * NB];
                            for i in 0..NB {
                                for k in 0..NB {
                                    let aik = av[i * NB + k];
                                    if aik != 0.0 {
                                        for j in 0..NB {
                                            cv[i * NB + j] += aik * bv[k * NB + j];
                                        }
                                    }
                                }
                            }
                            rk.pami().write_f64s(cbuf, &cv);
                            s.sleep(SimDuration::from_us(40)).await; // flop time
                            c.acc_patch(&rk, ilo, ihi, jlo, jhi, cbuf, 1.0).await;
                        }
                    }
                    task += 1;
                }
            }
            rk.barrier().await;
        });
    }
    let end = sim.run();
    let fences = armci.induced_fences();
    armci.finalize();
    sim.shutdown();
    // Verify: C == A (since B = I).
    let checksum = c.checksum();
    assert!(
        (checksum - (N * N) as f64).abs() < 1e-6,
        "C checksum {checksum} != {}",
        N * N
    );
    (end.as_us(), fences, checksum)
}

fn main() {
    println!("dgemm with overlapped gets (A,B) and accumulates (C), {N}x{N}, {P} ranks");
    let (t_naive, f_naive, _) = run(ConsistencyMode::PerTarget);
    println!("  cs_tgt (naive): {t_naive:>10.1} us, induced fences = {f_naive}");
    let (t_mr, f_mr, _) = run(ConsistencyMode::PerRegion);
    println!("  cs_mr  (paper): {t_mr:>10.1} us, induced fences = {f_mr}");
    println!(
        "  cs_mr removes {} false-positive fences and is {:.1}% faster; result verified (C = A)",
        f_naive - f_mr,
        100.0 * (t_naive - t_mr) / t_naive
    );
}
