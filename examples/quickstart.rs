//! Quickstart: bring up a simulated BG/Q partition, run an ARMCI program on
//! four ranks, and read back the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use armci::{Armci, ArmciConfig};
use desim::Sim;
use pami_sim::{Machine, MachineConfig};

fn main() {
    // 1. A simulation, a 4-process machine (one node, c=4), an ARMCI runtime.
    let sim = Sim::new();
    let machine = Machine::new(sim.clone(), MachineConfig::new(4).procs_per_node(4));
    let armci = Armci::new(machine, ArmciConfig::default());

    // 2. Each rank runs as an async task against virtual time.
    for r in 0..4 {
        let rk = armci.rank(r);
        let s = sim.clone();
        sim.spawn(async move {
            // Remotely accessible allocation (registered for RDMA).
            let mine = rk.malloc(4096).await;
            rk.pami().write_i64(mine, rk.id() as i64 * 100);
            rk.barrier().await;

            // One-sided get from the right neighbour.
            let right = (rk.id() + 1) % 4;
            let buf = rk.malloc(8).await;
            // NOTE: in this simulation offsets are per-rank; symmetric
            // allocation order makes neighbour offsets identical.
            rk.get(right, buf, mine, 8).await;
            let got = rk.pami().read_i64(buf);
            println!(
                "[{:>10}] rank {} read {:>4} from rank {}",
                format!("{}", s.now()),
                rk.id(),
                got,
                right
            );
            assert_eq!(got, right as i64 * 100);

            // One-sided put to the left neighbour, made visible by a fence.
            let left = (rk.id() + 3) % 4;
            rk.pami().write_i64(buf, rk.id() as i64 + 1000);
            rk.put(left, buf, mine + 8, 8).await;
            rk.fence(left).await;
            rk.barrier().await;

            let from_right = rk.pami().read_i64(mine + 8);
            println!(
                "[{:>10}] rank {} received {:>4} from rank {}",
                format!("{}", s.now()),
                rk.id(),
                from_right,
                (rk.id() + 1) % 4
            );
            assert_eq!(from_right, ((rk.id() + 1) % 4) as i64 + 1000);
        });
    }

    // 3. Run the virtual clock until everything completes.
    sim.run();
    armci.finalize();
    sim.shutdown();
    println!("done at {} of virtual time", sim.now());
}
