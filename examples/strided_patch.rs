//! Patch-based transfers of a block-distributed matrix — the uniformly
//! non-contiguous (strided) datatype of §III-C2.
//!
//! Pulls patches of a distributed matrix that straddle several owners,
//! showing how the runtime picks the zero-copy chunk-list RDMA protocol for
//! wide patches and the packed typed-datatype path for tall-skinny ones.
//!
//! ```sh
//! cargo run --release --example strided_patch
//! ```

use armci::{Armci, ArmciConfig};
use desim::Sim;
use global_arrays::Ga;
use pami_sim::{Machine, MachineConfig};

const N: usize = 256;
const P: usize = 16;

fn main() {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(P).procs_per_node(4).contexts(2),
    );
    let armci = Armci::new(machine, ArmciConfig::default());
    let ga = Ga::create(&armci, "field", N, N);
    for i in 0..N {
        for j in 0..N {
            ga.set_direct(i, j, (i * N + j) as f64);
        }
    }
    println!(
        "matrix {N}x{N} over {P} ranks (grid {}x{})",
        ga.dist().pr,
        ga.dist().pc
    );

    let rk = armci.rank(0);
    let s = sim.clone();
    let ga2 = ga.clone();
    let stats = armci.machine().stats();
    sim.spawn(async move {
        // 1. A wide patch (full-width rows): coalesced chunks -> zero-copy.
        let wide = rk.malloc(8 * N * 8).await;
        let t0 = s.now();
        ga2.get_patch(&rk, 100, 108, 0, N, wide).await;
        println!(
            "wide  8x{N} patch: {:>9.2} us  (zero-copy strided ops so far: {})",
            (s.now() - t0).as_us(),
            stats.counter("armci.strided_zero_copy"),
        );
        let v = rk.pami().read_f64s(wide, 3);
        assert_eq!(
            v,
            vec![(100 * N) as f64, (100 * N + 1) as f64, (100 * N + 2) as f64]
        );

        // 2. A tall-skinny patch (one column): 8-byte chunks -> packed path.
        let skinny = rk.malloc(N * 8).await;
        let t0 = s.now();
        ga2.get_patch(&rk, 0, N, 7, 8, skinny).await;
        println!(
            "tall  {N}x1  patch: {:>9.2} us  (packed strided ops so far:    {})",
            (s.now() - t0).as_us(),
            stats.counter("armci.strided_packed"),
        );
        let v = rk.pami().read_f64s(skinny, 2);
        assert_eq!(v, vec![7.0, (N + 7) as f64]);

        // 3. Scatter a patch back with put and verify remotely.
        let patch = rk.malloc(16 * 16 * 8).await;
        rk.pami().write_f64s(patch, &vec![-1.0; 256]);
        let t0 = s.now();
        ga2.put_patch(&rk, 64, 80, 64, 80, patch).await;
        rk.fence_all().await;
        println!(
            "put  16x16 patch: {:>9.2} us  (fenced)",
            (s.now() - t0).as_us()
        );
    });
    sim.run();
    armci.finalize();
    sim.shutdown();
    assert_eq!(ga.get_direct(70, 70), -1.0);
    assert_eq!(ga.get_direct(63, 63), (63 * N + 63) as f64);
    println!("verified patch contents at the owners");
}
