#![warn(missing_docs)]
//! # bgq-pgas — scalable PGAS communication subsystem on a simulated Blue Gene/Q
//!
//! Umbrella crate for the reproduction of *Building Scalable PGAS
//! Communication Subsystem on Blue Gene/Q* (Vishnu, Kerbyson, Barker,
//! van Dam — IPPS 2013). It re-exports the workspace layers:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | simulation kernel | [`desim`] | deterministic discrete-event executor, virtual time, sync primitives |
//! | interconnect | [`torus5d`] | 5D torus, ABCDET mapping, routing, LogGP cost model, contention |
//! | messaging | [`pami_sim`] | PAMI-like clients/contexts/endpoints/regions, AM, RMA, AMOs, progress |
//! | **PGAS runtime** | [`armci`] | the paper's contribution: protocols, caches, async threads, consistency |
//! | programming model | [`global_arrays`] | block-distributed arrays, shared counters |
//! | application | [`nwchem_scf`] | NWChem SCF Fock-build mini-app (Fig 10/11) |
//!
//! See `examples/` for runnable programs and `crates/bench/src/bin/` for the
//! per-figure reproduction harness.

pub use armci;
pub use desim;
pub use global_arrays;
pub use nwchem_scf;
pub use pami_sim;
pub use torus5d;
